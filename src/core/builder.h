// The three UV-index construction methods evaluated in the paper
// (Sec. VI-B.3):
//
//   Basic — Algorithm 1 per object: build the exact UV-cell against all
//           n-1 others, then index its r-objects. Exponential-flavored
//           cost; the paper reports 97 hours at 50K objects.
//   ICR   — I- and C-pruning (Algorithm 2) to get cr-objects, refine them
//           into exact r-objects by building the exact cell from the
//           candidates, then index the r-objects.
//   IC    — I- and C-pruning only; index the cr-objects directly. The
//           paper's winner (about 10% of ICR's time at 70K).
#ifndef UVD_CORE_BUILDER_H_
#define UVD_CORE_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "core/cr_finder.h"
#include "core/uv_index.h"
#include "rtree/rtree.h"
#include "uncertain/object_store.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace core {

enum class BuildMethod {
  kBasic,
  kICR,
  kIC,
};

const char* BuildMethodName(BuildMethod m);

/// Construction-time decomposition and pruning diagnostics
/// (Fig. 7(a)-(g)).
struct BuildStats {
  double seed_seconds = 0.0;      ///< Initial possible regions (Step 1).
  double pruning_seconds = 0.0;   ///< I- + C-pruning (Steps 2-3).
  double robject_seconds = 0.0;   ///< Exact cell / r-object generation.
  double indexing_seconds = 0.0;  ///< Algorithm 3 insertions.
  double total_seconds = 0.0;

  double i_pruning_ratio = 0.0;   ///< Avg fraction pruned by I-pruning.
  double c_pruning_ratio = 0.0;   ///< Avg fraction pruned after C-pruning.
  double avg_cr_objects = 0.0;    ///< Mean |C_i| (IC / ICR).
  double avg_r_objects = 0.0;     ///< Mean |F_i| (Basic / ICR).
};

/// Builds the UV-index for the dataset with the chosen method. `tree` is
/// the R-tree over the same objects (used by Algorithm 2's k-NN and range
/// queries); `ptrs` are the ObjectStore pointers stored in leaf tuples.
/// Finalizes the index. Objects must be in id order (objects[i].id() == i).
Status BuildUvIndex(const std::vector<uncertain::UncertainObject>& objects,
                    const std::vector<uncertain::ObjectPtr>& ptrs,
                    const rtree::RTree& tree, const geom::Box& domain,
                    BuildMethod method, const CrFinderOptions& cr_options,
                    UVIndex* index, BuildStats* build_stats = nullptr,
                    Stats* stats = nullptr);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_BUILDER_H_
