// Staged build pipeline: construction time vs worker count, stage-1
// kernel implementation and stage-1 traversal strategy for Basic / ICR /
// IC on the Fig. 7(a) workload (uniform and clustered shapes).
//
// Three axes:
//
//   threads        — stage 1 fans out per object; stage 2 (quad-tree
//                    insertion) runs domain-partitioned with a canonical
//                    stitch (core/uv_index.h).
//   kernel_mode    — scalar: the reference per-candidate loops;
//                    batch: the SoA kernels of geom/batch/ (envelope
//                    prefilter, squared-distance C-pruning, batched
//                    4-point test), optionally SIMD (UVD_ENABLE_SIMD).
//   traversal_mode — per_anchor: every anchor restarts the R-tree k-NN /
//                    range query from the root (the traversal oracle);
//                    shared: Morton-tiled anchors reuse a per-worker
//                    rtree::TraversalSession (shared frontier,
//                    previous-anchor bound, decoded-leaf memo).
//
// Every cell builds a byte-identical index; `--determinism-check` proves
// it by building the example index across thread counts, stage-2 shapes,
// kernel modes AND traversal modes/tile sizes, diffing serialized digests
// against the serial build (the CI cross-check step and a ctest smoke run
// exactly that; exits non-zero on any mismatch).
//
// `--json <path>` additionally writes every measured cell as a flat JSON
// record (method, shape, threads, kernel, traversal, stage wall clocks,
// the stage-1 phase breakdown descent/decode/kernel in aggregate CPU
// seconds, speedups) for bench history tracking — see BENCH_stage1.json
// at the repo root.
#include "bench_common.h"

#include <cstring>

#include "common/thread_pool.h"

namespace {

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<uint8_t> SerializedIndex(const uvd::core::UVDiagram& d) {
  std::vector<uint8_t> bytes;
  UVD_CHECK_OK(d.index().SerializeStructure(&bytes));
  return bytes;
}

/// Builds the example dataset at every (threads, mode, depth, kernel,
/// traversal, tile) combination and compares serialized digests against
/// the serial build. Returns the number of mismatches (0 = deterministic).
int RunDeterminismCheck() {
  using namespace uvd;
  datagen::DatasetOptions opts;
  opts.count = 800;
  opts.seed = 42;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);

  core::UVDiagramOptions serial_options;
  serial_options.build_threads = 1;
  serial_options.kernel_mode = geom::KernelMode::kScalar;
  serial_options.traversal_mode = rtree::TraversalMode::kPerAnchor;
  const auto serial =
      core::UVDiagram::Build(objects, domain, serial_options).ValueOrDie();
  const uint64_t serial_digest = Fnv1a(SerializedIndex(serial));
  std::printf("serial scalar per_anchor                  digest %016llx\n",
              static_cast<unsigned long long>(serial_digest));

  int mismatches = 0;
  const auto check = [&](int threads, core::Stage2Mode mode, int depth,
                         geom::KernelMode kernel, rtree::TraversalMode traversal,
                         int tile) {
    core::UVDiagramOptions options;
    options.build_threads = threads;
    options.stage2 = mode;
    options.stage2_max_depth = depth;
    options.kernel_mode = kernel;
    options.traversal_mode = traversal;
    options.traversal_tile_size = tile;
    const auto d = core::UVDiagram::Build(objects, domain, options).ValueOrDie();
    const uint64_t digest = Fnv1a(SerializedIndex(d));
    const bool ok = digest == serial_digest;
    std::printf(
        "threads=%d %-11s depth=%d kernel=%-6s traversal=%-10s tile=%-3d "
        "digest %016llx  %s\n",
        threads, core::Stage2ModeName(mode), depth, geom::KernelModeName(kernel),
        rtree::TraversalModeName(traversal), tile,
        static_cast<unsigned long long>(digest), ok ? "OK" : "MISMATCH");
    if (!ok) ++mismatches;
  };
  for (int threads : {2, 4, 8}) {
    for (geom::KernelMode kernel :
         {geom::KernelMode::kScalar, geom::KernelMode::kBatch}) {
      check(threads, core::Stage2Mode::kInOrder, 2, kernel,
            rtree::TraversalMode::kShared, 64);
      check(threads, core::Stage2Mode::kPartitioned, 2, kernel,
            rtree::TraversalMode::kShared, 64);
    }
    for (int depth : {1, 3}) {
      check(threads, core::Stage2Mode::kPartitioned, depth,
            geom::KernelMode::kBatch, rtree::TraversalMode::kShared, 64);
    }
  }
  // Traversal axis: per-anchor and shared across tile sizes (1 exercises
  // degenerate single-anchor tiles, 7 exercises tail tiles at 800 % 7 != 0,
  // 256 exercises multi-leaf working sets) on 1 and 8 workers.
  for (int threads : {1, 8}) {
    check(threads, core::Stage2Mode::kAuto, 2, geom::KernelMode::kBatch,
          rtree::TraversalMode::kPerAnchor, 64);
    for (int tile : {1, 7, 64, 256}) {
      check(threads, core::Stage2Mode::kAuto, 2, geom::KernelMode::kBatch,
            rtree::TraversalMode::kShared, tile);
    }
  }
  if (mismatches == 0) {
    std::printf("determinism check PASSED: every build serialized identically\n");
  } else {
    std::printf("determinism check FAILED: %d mismatching build(s)\n", mismatches);
  }
  return mismatches;
}

/// Quick traversal-layer smoke for ctest: one small ICR build per
/// traversal mode, printing the descent/decode/kernel phase breakdown and
/// asserting (a) byte-identical serialized indexes and (b) that the shared
/// session actually reused descent work (fewer node visits).
int RunTraversalSmoke() {
  using namespace uvd;
  datagen::DatasetOptions opts;
  opts.count = 800;
  opts.seed = 42;
  const auto objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);

  uint64_t digests[2] = {0, 0};
  uint64_t node_visits[2] = {0, 0};
  const rtree::TraversalMode modes[2] = {rtree::TraversalMode::kPerAnchor,
                                         rtree::TraversalMode::kShared};
  for (int m = 0; m < 2; ++m) {
    Stats stats;
    core::UVDiagramOptions options;
    options.method = core::BuildMethod::kICR;
    options.build_threads = 1;
    options.traversal_mode = modes[m];
    const auto d =
        core::UVDiagram::Build(objects, domain, options, &stats).ValueOrDie();
    digests[m] = Fnv1a(SerializedIndex(d));
    node_visits[m] = stats.Get(Ticker::kRtreeNodeVisits);
    const auto& bs = d.build_stats();
    std::printf(
        "traversal=%-10s stage1 %.3fs (descent %.3f decode %.3f kernel %.3f) "
        "node_visits %llu digest %016llx\n",
        rtree::TraversalModeName(modes[m]), bs.stage1_wall_seconds,
        bs.traversal_seconds - bs.decode_seconds, bs.decode_seconds,
        bs.kernel_seconds, static_cast<unsigned long long>(node_visits[m]),
        static_cast<unsigned long long>(digests[m]));
  }
  if (digests[0] != digests[1]) {
    std::printf("traversal smoke FAILED: digests differ across modes\n");
    return 1;
  }
  if (node_visits[1] >= node_visits[0]) {
    std::printf("traversal smoke FAILED: shared mode did not reuse descent "
                "work (%llu >= %llu node visits)\n",
                static_cast<unsigned long long>(node_visits[1]),
                static_cast<unsigned long long>(node_visits[0]));
    return 1;
  }
  std::printf("traversal smoke PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uvd;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--traversal-smoke") == 0) {
      bench::PrintBanner("Traversal-session smoke: phase breakdown + digest",
                         "bench_parallel_construction --traversal-smoke");
      return RunTraversalSmoke();
    }
    if (std::strcmp(argv[i], "--determinism-check") == 0) {
      bench::PrintBanner("Stage-2 + kernel + traversal determinism cross-check",
                         "serialized-index digest equality across builds");
      return RunDeterminismCheck() == 0 ? 0 : 1;
    }
  }
  const std::string json_path = bench::ParseJsonPath(argc, argv);
  bench::JsonReport report("parallel_construction_stage1_sweep");

  bench::PrintBanner("Parallel construction: T_c vs threads, kernel, traversal",
                     "staged pipeline over the Fig. 7(a) workload");
  std::printf("hardware concurrency: %d\n", ThreadPool::DefaultThreads());
  std::printf("batch kernels: %s (SIMD %s)\n\n", geom::batch::SimdIsa(),
              geom::batch::SimdEnabled() ? "on" : "off");

  const int thread_sweep[] = {1, 8};
  const core::BuildMethod methods[] = {core::BuildMethod::kBasic,
                                       core::BuildMethod::kICR,
                                       core::BuildMethod::kIC};
  struct ShapeCase {
    const char* name;
    bool cloud;
  };
  const ShapeCase shapes[] = {{"uniform", false}, {"cluster", true}};

  for (core::BuildMethod method : methods) {
    datagen::DatasetOptions opts;
    // Basic is O(n) envelope insertions per object; run it on a reduced
    // size, the pruned methods on the scaled Fig. 7(a) size.
    opts.count = method == core::BuildMethod::kBasic
                     ? bench::ScaledCount(2000)
                     : bench::ScaledCount(10000);
    opts.seed = 42;
    for (const ShapeCase& shape : shapes) {
      // sigma = domain/8 concentrates the mass like the Fig. 7(g) clouds
      // without degenerating every k-NN into the same few leaves.
      const auto objects =
          shape.cloud
              ? datagen::GenerateGaussianCloud(opts, opts.domain_size / 8.0)
              : datagen::GenerateUniform(opts);
      std::printf("%s / %s (|O| = %zu, partitioned stage 2, batch kernel)\n",
                  core::BuildMethodName(method), shape.name, opts.count);
      std::printf("%8s | %11s %10s %8s | %26s\n", "threads", "perA s1(s)",
                  "shrd s1(s)", "s1 spdup", "shared descent/decode/kern(s)");
      for (int threads : thread_sweep) {
        double s1_wall[2] = {0.0, 0.0};
        double breakdown[3] = {0.0, 0.0, 0.0};
        const rtree::TraversalMode traversals[2] = {
            rtree::TraversalMode::kPerAnchor, rtree::TraversalMode::kShared};
        for (int t = 0; t < 2; ++t) {
          // The kernel axis rides along only where it changes the answer
          // materially (scalar vs batch is tracked by earlier PRs'
          // records); the traversal comparison runs the default batch
          // kernel in both modes.
          Stats stats;
          core::UVDiagramOptions options;
          options.method = method;
          options.build_threads = threads;
          options.kernel_mode = geom::KernelMode::kBatch;
          options.traversal_mode = traversals[t];
          auto diagram = bench::BuildDiagram(objects, datagen::DomainFor(opts),
                                             options, &stats);
          const core::BuildStats& bs = diagram.build_stats();
          s1_wall[t] = bs.stage1_wall_seconds;
          if (traversals[t] == rtree::TraversalMode::kShared) {
            breakdown[0] = bs.traversal_seconds - bs.decode_seconds;
            breakdown[1] = bs.decode_seconds;
            breakdown[2] = bs.kernel_seconds;
          }
          report.BeginRecord();
          report.Add("method", core::BuildMethodName(method));
          report.Add("shape", shape.name);
          report.Add("objects", static_cast<int64_t>(opts.count));
          report.Add("threads", static_cast<int64_t>(threads));
          report.Add("kernel", geom::KernelModeName(geom::KernelMode::kBatch));
          report.Add("simd", geom::batch::SimdEnabled() ? geom::batch::SimdIsa()
                                                        : "none");
          report.Add("traversal", rtree::TraversalModeName(traversals[t]));
          report.Add("stage1_wall_s", bs.stage1_wall_seconds);
          report.Add("stage2_wall_s", bs.stage2_wall_seconds);
          report.Add("total_s", bs.total_seconds);
          // Aggregate CPU seconds across workers (can exceed the walls).
          report.Add("descent_cpu_s", bs.traversal_seconds - bs.decode_seconds);
          report.Add("decode_cpu_s", bs.decode_seconds);
          report.Add("kernel_cpu_s", bs.kernel_seconds);
        }
        std::printf("%8d | %11.2f %10.2f %7.2fx | %8.2f / %6.2f / %6.2f\n",
                    threads, s1_wall[0], s1_wall[1], s1_wall[0] / s1_wall[1],
                    breakdown[0], breakdown[1], breakdown[2]);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "Every cell builds a byte-identical index (rtree/traversal_session.h,\n"
      "geom/batch/kernels.h); run with --determinism-check to verify digests\n"
      "across thread counts, stage-2 shapes, kernel modes and traversal\n"
      "modes/tile sizes. The shared columns reuse a per-worker traversal\n"
      "session over Morton-ordered anchor tiles with the per-anchor columns\n"
      "as their oracle; descent/decode/kernel split stage-1 CPU seconds by\n"
      "phase (tree descent vs leaf decode vs pruning kernels).\n");
  report.WriteTo(json_path);
  return 0;
}
