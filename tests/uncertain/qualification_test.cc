// Tests for PNN qualification probabilities: conservation, the d_minmax
// verifier of [14], agreement with Monte Carlo, and edge cases.
#include "uncertain/qualification.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "uncertain/monte_carlo.h"

namespace uvd {
namespace uncertain {
namespace {

UncertainObject Gauss(int id, geom::Point c, double r) {
  return UncertainObject(id, geom::Circle(c, r), RadialHistogramPdf::Gaussian(r));
}

std::vector<const UncertainObject*> Refs(const std::vector<UncertainObject>& objs) {
  std::vector<const UncertainObject*> refs;
  for (const auto& o : objs) refs.push_back(&o);
  return refs;
}

double TotalProbability(const std::vector<PnnAnswer>& answers) {
  return std::accumulate(answers.begin(), answers.end(), 0.0,
                         [](double acc, const PnnAnswer& a) { return acc + a.probability; });
}

TEST(FilterTest, DMinMaxRemovesDominatedObjects) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {10, 0}, 2));    // dist_max = 12
  objs.push_back(Gauss(1, {11, 0}, 2));    // dist_min = 9 <= 12: stays
  objs.push_back(Gauss(2, {100, 0}, 2));   // dist_min = 98 > 12: pruned
  const auto kept = FilterByDMinMax(Refs(objs), {0, 0});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0]->id(), 0);
  EXPECT_EQ(kept[1]->id(), 1);
}

TEST(FilterTest, BoundaryObjectKept) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {10, 0}, 0));   // point at distance 10
  objs.push_back(Gauss(1, {10, 0.0}, 0));
  const auto kept = FilterByDMinMax(Refs(objs), {0, 0});
  EXPECT_EQ(kept.size(), 2u);  // exact tie: both can be the NN
}

TEST(QualificationTest, SingleObjectHasProbabilityOne) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(5, {3, 3}, 2));
  const auto answers = ComputeQualificationProbabilities(Refs(objs), {0, 0});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].id, 5);
  EXPECT_DOUBLE_EQ(answers[0].probability, 1.0);
}

TEST(QualificationTest, ProbabilitiesSumToOne) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<UncertainObject> objs;
    const int n = 2 + static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < n; ++i) {
      objs.push_back(Gauss(i, {rng.Uniform(-30, 30), rng.Uniform(-30, 30)},
                           rng.Uniform(0.5, 10)));
    }
    const auto answers = ComputeQualificationProbabilities(Refs(objs), {0, 0});
    EXPECT_NEAR(TotalProbability(answers), 1.0, 5e-3) << "trial " << trial;
  }
}

TEST(QualificationTest, SymmetricPairSplitsEvenly) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {-10, 0}, 3));
  objs.push_back(Gauss(1, {10, 0}, 3));
  const auto answers = ComputeQualificationProbabilities(Refs(objs), {0, 0});
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_NEAR(answers[0].probability, 0.5, 1e-3);
  EXPECT_NEAR(answers[1].probability, 0.5, 1e-3);
}

TEST(QualificationTest, CloserObjectWinsMore) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {5, 0}, 3));  // distances in [2, 8]
  objs.push_back(Gauss(1, {9, 0}, 3));  // distances in [6, 12]: overlaps
  const auto answers = ComputeQualificationProbabilities(Refs(objs), {0, 0});
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].id, 0);
  EXPECT_GT(answers[0].probability, 0.8);
  EXPECT_GT(answers[1].probability, 0.0);
}

TEST(QualificationTest, DominatedObjectExcluded) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {5, 0}, 1));    // dist_max = 6
  objs.push_back(Gauss(1, {50, 0}, 1));   // dist_min = 49: no chance
  const auto answers = ComputeQualificationProbabilities(Refs(objs), {0, 0});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].id, 0);
  EXPECT_DOUBLE_EQ(answers[0].probability, 1.0);
}

TEST(QualificationTest, MatchesMonteCarlo) {
  Rng rng(2024);
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {6, 2}, 4));
  objs.push_back(Gauss(1, {9, -3}, 5));
  objs.push_back(Gauss(2, {-8, 1}, 6));
  objs.push_back(Gauss(3, {12, 10}, 4));
  const geom::Point q{0, 0};
  const auto numeric = ComputeQualificationProbabilities(Refs(objs), q);
  const auto mc = MonteCarloQualification(Refs(objs), q, 400000, &rng);
  ASSERT_GE(numeric.size(), 2u);
  for (const PnnAnswer& a : numeric) {
    double mc_p = 0.0;
    for (const PnnAnswer& m : mc) {
      if (m.id == a.id) mc_p = m.probability;
    }
    EXPECT_NEAR(a.probability, mc_p, 0.01) << "object " << a.id;
  }
}

TEST(QualificationTest, PointObjectsClassicNearestWins) {
  // All radii zero: the nearest point gets probability 1.
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {3, 0}, 0));
  objs.push_back(Gauss(1, {5, 0}, 0));
  objs.push_back(Gauss(2, {-4, 0}, 0));
  const auto answers = ComputeQualificationProbabilities(Refs(objs), {0, 0});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].id, 0);
  EXPECT_DOUBLE_EQ(answers[0].probability, 1.0);
}

TEST(QualificationTest, EmptyCandidates) {
  const auto answers = ComputeQualificationProbabilities({}, {0, 0});
  EXPECT_TRUE(answers.empty());
}

TEST(QualificationTest, AnswersSortedByProbability) {
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {7, 0}, 3));
  objs.push_back(Gauss(1, {9, 0}, 3));
  objs.push_back(Gauss(2, {11, 0}, 3));
  const auto answers = ComputeQualificationProbabilities(Refs(objs), {0, 0});
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_GE(answers[i - 1].probability, answers[i].probability);
  }
}

TEST(QualificationTest, StatsTicker) {
  Stats stats;
  std::vector<UncertainObject> objs;
  objs.push_back(Gauss(0, {3, 0}, 1));
  objs.push_back(Gauss(1, {4, 0}, 1));
  ComputeQualificationProbabilities(Refs(objs), {0, 0}, {}, &stats);
  EXPECT_EQ(stats.Get(Ticker::kQualificationIntegrations), 1u);
}

TEST(MonteCarloTest, SamplePositionsInsideRegion) {
  Rng rng(5);
  const auto obj = Gauss(0, {10, 10}, 7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(geom::Distance(SamplePosition(obj, &rng), obj.center()),
              7.0 + 1e-9);
  }
}

}  // namespace
}  // namespace uncertain
}  // namespace uvd
