// The UV-index (paper Sec. V): an adaptive quad-tree over UV-cells. Leaf
// nodes carry page lists of <ID, MBC, ptr> tuples on simulated disk; the
// non-leaf level is bounded by M nodes kept in memory. Insertion follows
// Algorithm 3 (InsertObj), split decisions Algorithm 4 (CheckSplit, split
// fraction theta vs threshold T_theta), and cell/region overlap tests
// Algorithm 5 (CheckOverlap with the 4-point corner test against the
// outside regions of the object's cr-objects).
#ifndef UVD_CORE_UV_INDEX_H_
#define UVD_CORE_UV_INDEX_H_

#include <array>
#include <cstdint>
#include <vector>

#include <memory>

#include "common/result.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/uv_edge.h"
#include "geom/batch/kernels.h"
#include "geom/box.h"
#include "geom/circle.h"
#include "geom/envelope.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "uncertain/object_store.h"

namespace uvd {
namespace core {

/// Construction parameters with the paper's defaults (Sec. VI-A).
struct UVIndexOptions {
  int max_nonleaf = 4000;        ///< M: in-memory non-leaf node budget.
  double split_threshold = 1.0;  ///< T_theta in [0, 1]; larger = more splits.
  int leaf_fanout = 100;         ///< Tuples per 4 KB leaf page.
  /// Accept insertions whose center lies outside the domain. Sharded
  /// serving registers an object with every sub-domain its UV-cell
  /// overlaps, so border objects belong to indexes that do not contain
  /// their centers; Algorithm 3's root-level CheckOverlap remains the real
  /// placement gate. Off by default: for a whole-domain index an external
  /// center is a caller bug worth rejecting.
  bool accept_border_objects = false;
  /// CheckOverlap (Algorithm 5) implementation: kBatch evaluates the
  /// 4-point test over SoA blocks of cr-objects (geom/batch/kernels.h);
  /// kScalar is the original per-edge loop and the determinism oracle. The
  /// tree, pages and serialized image are bitwise-identical either way;
  /// only the kFourPointTests / kHyperbolaTests scan-length tickers differ
  /// (block early exits round up, the pruner-hint scan order changes).
  /// Construction-time only: not serialized, irrelevant after Finalize().
  geom::KernelMode kernel_mode = geom::KernelMode::kBatch;
};

/// \brief Adaptive grid index over UV-cells.
///
/// Usage: construct, InsertObject() once per object (with its cr-objects
/// from Algorithm 2 — or its exact r-objects for the ICR method), then
/// Finalize() to write leaf pages; afterwards the index is queryable.
class UVIndex {
 public:
  /// Quad-tree node. Children exist iff !is_leaf; `num_pages` models the
  /// allocated page chain during construction (pages are materialized at
  /// Finalize()).
  struct Node {
    geom::Box region;
    bool is_leaf = true;
    std::array<uint32_t, 4> children{};      // valid iff !is_leaf
    std::vector<uint32_t> member_slots;      // construction-time tuple refs
    /// Per-resident CheckOverlap pruner hint, parallel to member_slots
    /// (member_hints[i] belongs to member_slots[i]). Hints live with the
    /// leaf — not the member — so a leaf's hint evolution is a pure
    /// function of its own insertion sequence: subtrees built in parallel
    /// replay the serial scan lengths (and tickers) exactly, and a member
    /// resident in several leaves keeps an independent hint in each. On a
    /// split each resident's current hint is forked into every child it
    /// joins. Construction-time only; never affects decisions (see
    /// CheckOverlapWith).
    std::vector<uint32_t> member_hints;
    size_t num_pages = 1;                    // allocated page count
    std::vector<storage::PageId> pages;      // materialized at Finalize()
    /// Memoized CheckSplit redistribution of the residents over the four
    /// quarters, as POSITIONS into member_slots (stable: the list is
    /// append-only between splits), maintained incrementally so repeated
    /// OVERFLOW decisions stay O(|C_i|) instead of re-testing the whole
    /// resident list. Positions (not slots) let the split fork each
    /// resident's member_hints entry alongside it.
    std::array<std::vector<uint32_t>, 4> split_cache;
    bool split_cache_valid = false;
  };

  UVIndex(const geom::Box& domain, storage::PageManager* pm,
          const UVIndexOptions& options = {}, Stats* stats = nullptr);

  /// Algorithm 3: inserts one object. `cr_regions` are the uncertainty
  /// regions of its cr-objects (C_i), used by CheckOverlap.
  Status InsertObject(const geom::Circle& region, int id, uncertain::ObjectPtr ptr,
                      std::vector<geom::Circle> cr_regions);

  /// One object of a bulk insertion: the exact argument tuple InsertObject
  /// takes, materialized so stage 2 can be replayed out of order.
  struct BulkInsertItem {
    geom::Circle region;
    int id = 0;
    uncertain::ObjectPtr ptr = 0;
    std::vector<geom::Circle> cr_regions;
  };

  /// Domain-partitioned parallel stage 2 (see InsertObjectsPartitioned).
  struct PartitionedInsertOptions {
    /// Subtree insertion workers drawn from the caller's pool. 1 (or a
    /// null pool) degrades to the plain serial insertion loop.
    int threads = 1;
    /// Partition frontier depth cap below the root (clamped to [1, 3]):
    /// up to 4^max_depth insertion domains.
    int max_depth = 2;
    /// Stop growing the serial prefix once the frontier reaches this many
    /// subtrees. <= 0: min(64, max(4, 2 * threads)).
    int target_subtrees = 0;
    /// Hard cap on the serial prefix length (objects inserted before the
    /// fan-out, scaffold permitting). <= 0: 16 * leaf_fanout.
    size_t prefix_cap = 0;
  };

  /// Diagnostics from one partitioned insertion.
  struct PartitionedInsertReport {
    size_t total_objects = 0;
    size_t prefix_objects = 0;   ///< Inserted serially before the fan-out.
    int subtrees = 0;            ///< Parallel insertion domains (frontier size).
    size_t parallel_splits = 0;  ///< Split events replayed by the stitch.
    bool serial_fallback = false;  ///< max_nonleaf bound: rebuilt serially.
    double member_seconds = 0.0;   ///< Member/envelope materialization.
    double prefix_seconds = 0.0;   ///< Serial prefix insertion.
    double route_seconds = 0.0;    ///< Ancestor overlap routing.
    double subtree_seconds = 0.0;  ///< Parallel subtree insertion.
    double stitch_seconds = 0.0;   ///< Event merge + canonical renumbering.
  };

  /// Inserts `items` (in order) with stage 2 fanned out per quad-tree
  /// subtree, producing a tree — and, after Finalize, a serialized index —
  /// BITWISE-IDENTICAL to calling InsertObject(items[0]), ...,
  /// InsertObject(items[n-1]) on a fresh index.
  ///
  /// How the serial bytes are reproduced (the determinism contract):
  ///   1. Serial prefix: items are inserted one at a time by the exact
  ///      serial algorithm until every node above the partition frontier
  ///      has split (the scaffold). From then on an ancestor can never
  ///      split again, so the frontier subtrees evolve independently.
  ///   2. Route: each remaining item is tested against the scaffold with
  ///      the same CheckOverlap descent the serial build would run, and
  ///      assigned to every frontier subtree it reaches (the same
  ///      replication rule shard borders use, one level down).
  ///   3. Per-subtree build: each subtree inserts its items in order into
  ///      a private node arena (its own id namespace), logging every
  ///      split event keyed by the item position that triggered it. The
  ///      global max_nonleaf budget is optimistically ignored here.
  ///   4. Canonical stitch: the per-subtree event logs are merged by
  ///      (item position, subtree rank in root-DFS order) — exactly the
  ///      order the serial build creates nodes — and the arena nodes are
  ///      renumbered into the main node vector in that order. Page ids
  ///      are then assigned by Finalize in node order as always, so the
  ///      whole serialized image matches the serial build byte for byte.
  ///      If replaying the merged events would exhaust max_nonleaf (the
  ///      one piece of global state splits share), the optimistic result
  ///      is discarded and the build reruns serially — identical bytes,
  ///      no speedup, reported via PartitionedInsertReport.
  ///
  /// Stats: structure, pages, every query answer AND every ticker are
  /// exact — including the scan-length tickers kHyperbolaTests /
  /// kFourPointTests. The pruner hints that set scan lengths are
  /// leaf-resident (Node::member_hints) and descent gates use a fresh
  /// hint per check, so a leaf's hint evolution depends only on its own
  /// insertion sequence, which the routing + per-subtree replay preserves
  /// verbatim. (The KERNEL axis still changes those two tickers — kBatch
  /// evaluates blockwise — see UVIndexOptions::kernel_mode.)
  ///
  /// Requires a fresh index (no prior insertions). Items need not have
  /// contiguous ids (shard replicas keep global ids); order is what
  /// matters. `pool` may be shared; only `options.threads` tasks are in
  /// flight at once.
  Status InsertObjectsPartitioned(std::vector<BulkInsertItem> items,
                                  ThreadPool* pool,
                                  const PartitionedInsertOptions& options,
                                  PartitionedInsertReport* report = nullptr);

  /// Writes every leaf's tuple list to disk pages. Required before queries;
  /// drops the cr-object construction cache.
  Status Finalize();

  /// Finalize with the leaf-page encoding fanned out over `threads`
  /// workers from `pool`. Page ids are pre-assigned in node order from one
  /// contiguous PageManager run (storage::PageManager::AllocateRun), so
  /// the page layout — ids and bytes — is identical to the serial
  /// Finalize() for every thread count. Falls back to the serial path when
  /// `pool` is null or `threads` <= 1.
  Status FinalizeWith(ThreadPool* pool, int threads);

  /// Incremental insertion into a finalized index (paper Sec. VII future
  /// work). The grid structure is frozen — no splits — so the object is
  /// appended to the page chain of every leaf its cell may overlap.
  /// Correctness is preserved: a new object only shrinks other objects'
  /// true cells, so existing leaf tuples remain conservative supersets
  /// (Lemma 4 intact), and the new object's own tuples are placed by the
  /// same CheckOverlap test used at construction. Leaf chains lengthen
  /// over time; rebuild when query I/O degrades.
  Status InsertObjectLive(const geom::Circle& region, int id,
                          uncertain::ObjectPtr ptr,
                          std::vector<geom::Circle> cr_regions);

  /// PNN index phase: locate the leaf containing q, read its page chain and
  /// return the stored tuples (a superset of the answer objects; the caller
  /// applies the d_minmax verification of [14]). Equivalent to
  /// LocateLeafChecked + ReadLeafEntries; the split form exists so the
  /// query engine's cell cache can memoize the page-list phase.
  Result<std::vector<rtree::LeafEntry>> RetrieveCandidates(const geom::Point& q) const;

  /// Point-location phase with the validation RetrieveCandidates performs
  /// (finalized index, q inside the domain). The domain is owned with
  /// explicit [min, max) semantics per axis — interior boundaries belong to
  /// the upper/right side — except the domain's own max edge, which stays
  /// closed so boundary probes are answered rather than dropped. See
  /// OwnsPoint for the exclusive-ownership predicate used by shard routing.
  Result<uint32_t> LocateLeafChecked(const geom::Point& q) const;

  /// True iff this index owns q exclusively under the half-open [min, max)
  /// tiling convention: adjacent indexes covering a partitioned domain each
  /// own a cut-line point exactly once (the upper/right neighbor). Points
  /// on the global domain's max edge are owned by no index under this test;
  /// routers clamp them to the max-edge shard (whose closed max edge
  /// accepts them, see LocateLeafChecked).
  bool OwnsPoint(const geom::Point& q) const;

  /// Page-list phase: reads and decodes the leaf's page chain. Leaf I/O is
  /// billed to the index's Stats; safe for concurrent callers.
  Result<std::vector<rtree::LeafEntry>> ReadLeafEntries(uint32_t leaf) const;

  /// Index of the leaf node whose region contains q.
  uint32_t LocateLeaf(const geom::Point& q) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  uint32_t root() const { return 0; }
  const geom::Box& domain() const { return domain_; }
  bool finalized() const { return finalized_; }

  int num_nonleaf() const { return nonleaf_count_; }
  size_t num_leaves() const;
  size_t total_leaf_pages() const;
  int height() const;

  /// Number of objects associated with the leaf (the paper's offline
  /// per-leaf counter for pattern queries, Sec. V-C).
  size_t LeafObjectCount(uint32_t node_index) const;

  /// Ids of the objects associated with the leaf (from the in-memory
  /// construction metadata; no I/O).
  std::vector<int> LeafObjectIds(uint32_t node_index) const;

  /// The paper's non-leaf memory model: 16 bytes per non-leaf node.
  size_t PaperMemoryBytes() const { return 16u * static_cast<size_t>(nonleaf_count_); }

  /// Serializes the finalized index's structure (domain, options, nodes,
  /// leaf page ids) into a byte stream; see uv_index_io.h for the paged
  /// wrapper.
  Status SerializeStructure(std::vector<uint8_t>* out) const;

  /// Rebuilds a finalized index from SerializeStructure output. Re-reads
  /// the (shared) leaf tuple pages to restore per-leaf object lists.
  static Result<UVIndex> DeserializeStructure(const std::vector<uint8_t>& data,
                                              storage::PageManager* pm,
                                              Stats* stats);

 private:
  struct Member {
    geom::Circle region;
    int id;
    uncertain::ObjectPtr ptr;
    std::vector<geom::Circle> cr_regions;
    /// Cell envelope from the cr-objects, used as an interior fast path in
    /// CheckOverlap: a grid region fully inside the cell can never be
    /// contained in any single outside region, so Algorithm 5 would answer
    /// "overlap" without the scan. Dropped at Finalize().
    /// (Pruner hints deliberately do NOT live here: a member-resident memo
    /// threads scan state across leaves in insertion-time order, which
    /// parallel subtree builds cannot replay. They live in
    /// Node::member_hints instead.)
    std::unique_ptr<geom::RadialEnvelope> cell;
    /// SoA mirror of cr_regions for the batch 4-point kernel; filled by
    /// MakeMember iff options_.kernel_mode == kBatch, dropped with the
    /// member records at Finalize().
    geom::batch::CircleSoA cr_soa;
  };

  enum class SplitDecision { kNormal, kOverflow, kSplit };

  /// One leaf split, logged by partitioned subtree builds so the stitch
  /// can replay node creation in serial order. `order_key` is the position
  /// (not id) of the item whose insertion triggered the split;
  /// `first_child` is the arena-local index of quarter 0 (quarters occupy
  /// four consecutive arena slots).
  struct SplitEvent {
    int order_key = 0;
    uint32_t first_child = 0;
  };

  /// The mutable state one insertion domain operates on. The serial path
  /// binds it to the index's own members (MainArena); partitioned subtree
  /// builds bind private node vectors, split-event logs and Stats shards
  /// so concurrent domains share nothing but the read-only member records
  /// (all pruner-hint state lives inside the arena's nodes —
  /// Node::member_hints).
  struct BuildArena {
    std::vector<Node>* nodes = nullptr;
    int* nonleaf_count = nullptr;
    /// False during optimistic subtree builds: the global max_nonleaf
    /// budget is checked post hoc by the stitch's event replay instead.
    bool enforce_budget = true;
    std::vector<SplitEvent>* events = nullptr;  // null: no logging
    Stats* stats = nullptr;
    int order_key = 0;  // stamps SplitEvents; item position being inserted
  };

  BuildArena MainArena();

  /// Algorithm 5 core: does the UV-cell represented by the member's
  /// cr-objects overlap `region`? Conservative: may answer true for a
  /// disjoint cell (extra candidates filtered at query time), never false
  /// for an overlapping one (Lemma 4). `hint` is the scan-start memo (the
  /// cr-object that pruned last usually prunes again); it is read, and
  /// overwritten on a "no overlap" answer. The answer never depends on
  /// it, only the scan length does — callers choose the hint discipline:
  /// descent gates pass a fresh 0 (checks are independent), split-cache
  /// maintenance threads the per-leaf residency hint
  /// (Node::member_hints).
  bool CheckOverlapWith(const Member& m, const geom::Box& region, Stats* stats,
                        size_t* hint) const;

  /// CheckOverlapWith against the index's own Stats with a fresh hint —
  /// the one-shot form used outside arena insertion (live inserts).
  bool CheckOverlap(const Member& m, const geom::Box& region) const;

  /// CheckOverlapWith for one member slot, billed to the arena's Stats.
  bool CheckOverlapArena(const BuildArena& a, uint32_t member_slot,
                         const geom::Box& region, size_t* hint) const;

  /// Algorithm 4. `incoming_hint` is the incoming member's evolving hint
  /// for this leaf (starts 0; the caller threads it on into
  /// AddToSplitCache or stores it as the residency hint). On kSplit,
  /// child_lists holds the redistributed member slots (incoming one
  /// included) and child_hints their forked residency hints, parallel.
  SplitDecision CheckSplit(const BuildArena& a, uint32_t node_idx,
                           uint32_t incoming_slot, size_t* incoming_hint,
                           std::array<std::vector<uint32_t>, 4>* child_lists,
                           std::array<std::vector<uint32_t>, 4>* child_hints);

  /// Builds the construction-time member record; the cell envelope is only
  /// materialized for large cr-sets where the interior fast path pays.
  Member MakeMember(const geom::Circle& region, int id, uncertain::ObjectPtr ptr,
                    std::vector<geom::Circle> cr_regions) const;

  /// Rebuilds the node's split cache from member_slots if invalid,
  /// threading each resident's member_hints entry through its four
  /// quadrant checks.
  void EnsureSplitCache(const BuildArena& a, uint32_t node_idx);

  /// Appends the quarter distribution of the member at position `pos` of
  /// member_slots to a valid split cache, threading `hint` through the
  /// four quadrant checks.
  void AddToSplitCache(const BuildArena& a, uint32_t node_idx, uint32_t pos,
                       size_t* hint);

  void InsertInto(const BuildArena& a, uint32_t node_idx, uint32_t member_slot);

  /// Partition frontier for the parallel phase: the maximal nodes at depth
  /// <= max_depth whose proper ancestors are all non-leaf, in root-DFS
  /// (child 0..3) order — the order the serial descent visits them, which
  /// is the tie-break rank of the stitch's event merge. {root} while the
  /// root is still a leaf.
  std::vector<uint32_t> ComputeFrontier(int max_depth) const;

  size_t LeafCapacity(const Node& node) const {
    return node.num_pages * static_cast<size_t>(options_.leaf_fanout);
  }

  geom::Box domain_;
  storage::PageManager* pm_;
  UVIndexOptions options_;
  Stats* stats_;
  std::vector<Node> nodes_;
  std::vector<Member> members_;
  int nonleaf_count_ = 0;
  bool finalized_ = false;
};

/// Conservative cell-vs-box overlap test (Algorithm 5, exported): true
/// unless some cr-object's outside region provably contains `box`, in which
/// case the UV-cell of the object with uncertainty region `region` cannot
/// intersect it. Sharded builds use this to decide which sub-domains an
/// object must be registered with — a "no" is exact (the cell misses the
/// box), a "yes" may be a false positive (harmless: the object is filtered
/// at query time like any other conservative candidate).
bool UvCellMayOverlap(const geom::Circle& region,
                      const std::vector<geom::Circle>& cr_regions,
                      const geom::Box& box, Stats* stats = nullptr);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_UV_INDEX_H_
