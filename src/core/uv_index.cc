#include "core/uv_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "rtree/leaf_codec.h"

namespace uvd {
namespace core {

UVIndex::UVIndex(const geom::Box& domain, storage::PageManager* pm,
                 const UVIndexOptions& options, Stats* stats)
    : domain_(domain), pm_(pm), options_(options), stats_(stats) {
  UVD_CHECK_GT(options_.leaf_fanout, 0);
  UVD_CHECK_GE(options_.split_threshold, 0.0);
  UVD_CHECK_LE(options_.split_threshold, 1.0);
  UVD_CHECK(2 + static_cast<size_t>(options_.leaf_fanout) * rtree::kLeafEntryBytes <=
            pm_->page_size())
      << "leaf fanout too large for the page size";
  Node root;
  root.region = domain;
  nodes_.push_back(std::move(root));
  // The paper initializes nonleafnum to 1 (Sec. V-B "Framework").
  nonleaf_count_ = 1;
}

bool UVIndex::CheckOverlap(const Member& m, const geom::Box& region) const {
  if (stats_ != nullptr) stats_->Add(Ticker::kOverlapChecks);
  // Algorithm 5: if any cr-object's outside region fully contains the grid
  // region, the UV-cell cannot overlap it (Lemma 4).
  const size_t n = m.cr_regions.size();
  if (n == 0) return true;
  // Interior fast path: if the region lies inside the cell bounded by the
  // cr-objects' edges, no single outside region can contain it, so the
  // scan below would certainly answer "overlap". Identical decision, O(1)
  // amortized instead of O(|C_i|).
  if (m.cell != nullptr && m.cell->ContainsBox(region)) return true;
  // Scan, trying the cr-object that pruned last time first: consecutive
  // checks cover adjacent regions, so it usually prunes again.
  if (m.last_pruner < n) {
    const UVEdge edge(m.region, m.cr_regions[m.last_pruner], /*j_id=*/-1);
    if (edge.RegionInOutside(region, stats_)) return false;
  }
  for (size_t k = 0; k < n; ++k) {
    if (k == m.last_pruner) continue;
    const UVEdge edge(m.region, m.cr_regions[k], /*j_id=*/-1);
    if (edge.RegionInOutside(region, stats_)) {
      m.last_pruner = k;
      return false;
    }
  }
  return true;
}

void UVIndex::EnsureSplitCache(uint32_t node_idx) {
  Node& node = nodes_[node_idx];
  if (node.split_cache_valid) return;
  for (auto& list : node.split_cache) list.clear();
  for (uint32_t slot : node.member_slots) {
    const Member& m = members_[slot];
    for (int k = 0; k < 4; ++k) {
      if (CheckOverlap(m, node.region.Quadrant(k))) {
        node.split_cache[static_cast<size_t>(k)].push_back(slot);
      }
    }
  }
  node.split_cache_valid = true;
}

void UVIndex::AddToSplitCache(uint32_t node_idx, uint32_t member_slot) {
  Node& node = nodes_[node_idx];
  if (!node.split_cache_valid) return;  // rebuilt lazily when needed
  const Member& m = members_[member_slot];
  for (int k = 0; k < 4; ++k) {
    if (CheckOverlap(m, node.region.Quadrant(k))) {
      node.split_cache[static_cast<size_t>(k)].push_back(member_slot);
    }
  }
}

UVIndex::SplitDecision UVIndex::CheckSplit(
    uint32_t node_idx, uint32_t incoming_slot,
    std::array<std::vector<uint32_t>, 4>* child_lists) {
  // Steps 1-3: room left on the allocated pages.
  if (nodes_[node_idx].member_slots.size() < LeafCapacity(nodes_[node_idx])) {
    return SplitDecision::kNormal;
  }
  // Steps 4-5: non-leaf budget exhausted.
  if (nonleaf_count_ + 1 > options_.max_nonleaf) return SplitDecision::kOverflow;

  // Steps 7-15: distribute A = O_i union g.list over the four quarters.
  // The resident part of the distribution is memoized (split_cache) and
  // maintained incrementally by the insertion paths, so only the incoming
  // object is tested here.
  EnsureSplitCache(node_idx);
  Node& node = nodes_[node_idx];
  std::array<bool, 4> incoming{};
  for (int k = 0; k < 4; ++k) {
    incoming[static_cast<size_t>(k)] =
        CheckOverlap(members_[incoming_slot], node.region.Quadrant(k));
  }

  // Step 16: split fraction theta (denominator is |g.list|, the resident
  // count before the insertion, as in the paper).
  size_t min_child = SIZE_MAX;
  for (int k = 0; k < 4; ++k) {
    min_child = std::min(min_child, node.split_cache[static_cast<size_t>(k)].size() +
                                        (incoming[static_cast<size_t>(k)] ? 1 : 0));
  }
  const double theta =
      static_cast<double>(min_child) / static_cast<double>(node.member_slots.size());
  if (theta >= options_.split_threshold) return SplitDecision::kOverflow;

  // SPLIT: hand the cached lists (plus the incoming object) to the caller
  // and drop the cache.
  for (int k = 0; k < 4; ++k) {
    (*child_lists)[static_cast<size_t>(k)] =
        std::move(node.split_cache[static_cast<size_t>(k)]);
    if (incoming[static_cast<size_t>(k)]) {
      (*child_lists)[static_cast<size_t>(k)].push_back(incoming_slot);
    }
    node.split_cache[static_cast<size_t>(k)].clear();
  }
  node.split_cache_valid = false;
  return SplitDecision::kSplit;
}

void UVIndex::InsertInto(uint32_t node_idx, uint32_t member_slot) {
  // Algorithm 3 Step 1.
  if (!CheckOverlap(members_[member_slot], nodes_[node_idx].region)) return;

  if (!nodes_[node_idx].is_leaf) {
    // Steps 2-5: recurse into all four children.
    const std::array<uint32_t, 4> children = nodes_[node_idx].children;
    for (uint32_t child : children) InsertInto(child, member_slot);
    return;
  }

  std::array<std::vector<uint32_t>, 4> child_lists;
  switch (CheckSplit(node_idx, member_slot, &child_lists)) {
    case SplitDecision::kNormal:
      nodes_[node_idx].member_slots.push_back(member_slot);
      AddToSplitCache(node_idx, member_slot);
      break;
    case SplitDecision::kOverflow:
      nodes_[node_idx].num_pages += 1;  // Step 13: allocate a new page
      nodes_[node_idx].member_slots.push_back(member_slot);
      AddToSplitCache(node_idx, member_slot);
      break;
    case SplitDecision::kSplit: {
      // Steps 16-22: the node becomes a non-leaf; CheckSplit already
      // distributed the members (incoming one included) into the quarters.
      std::array<uint32_t, 4> child_idx{};
      for (int k = 0; k < 4; ++k) {
        Node child;
        child.region = nodes_[node_idx].region.Quadrant(k);
        child.member_slots = std::move(child_lists[static_cast<size_t>(k)]);
        child.num_pages = std::max<size_t>(
            1, (child.member_slots.size() + static_cast<size_t>(options_.leaf_fanout) - 1) /
                   static_cast<size_t>(options_.leaf_fanout));
        nodes_.push_back(std::move(child));
        child_idx[static_cast<size_t>(k)] = static_cast<uint32_t>(nodes_.size() - 1);
      }
      Node& parent = nodes_[node_idx];  // re-fetch: vector may have grown
      parent.is_leaf = false;
      parent.children = child_idx;
      parent.member_slots.clear();
      parent.member_slots.shrink_to_fit();
      parent.num_pages = 0;
      ++nonleaf_count_;
      break;
    }
  }
}

Status UVIndex::InsertObject(const geom::Circle& region, int id,
                             uncertain::ObjectPtr ptr,
                             std::vector<geom::Circle> cr_regions) {
  if (finalized_) {
    return Status::InvalidArgument("index already finalized");
  }
  if (!options_.accept_border_objects && !domain_.Contains(region.center)) {
    return Status::InvalidArgument("object center outside the domain");
  }
  members_.push_back(MakeMember(region, id, ptr, std::move(cr_regions)));
  InsertInto(root(), static_cast<uint32_t>(members_.size() - 1));
  return Status::OK();
}

UVIndex::Member UVIndex::MakeMember(const geom::Circle& region, int id,
                                    uncertain::ObjectPtr ptr,
                                    std::vector<geom::Circle> cr_regions) const {
  Member member{region, id, ptr, std::move(cr_regions), nullptr, 0};
  // The interior fast path (envelope containment) only pays off when the
  // cr-object scan it replaces is long; small sets are cheaper to scan
  // directly than to summarize. RadialEnvelope anchors must lie inside the
  // domain, so border-replicated members (center outside a shard's
  // sub-domain) skip the fast path — decisions are identical, just O(|C_i|).
  constexpr size_t kCellFastPathThreshold = 32;
  if (member.cr_regions.size() > kCellFastPathThreshold &&
      domain_.Contains(region.center)) {
    member.cell = std::make_unique<geom::RadialEnvelope>(region.center, domain_);
    for (size_t k = 0; k < member.cr_regions.size(); ++k) {
      member.cell->Insert(geom::RadialConstraint::ForObjects(
          region, member.cr_regions[k], static_cast<int>(k)));
    }
  }
  return member;
}

Status UVIndex::Finalize() {
  if (finalized_) return Status::OK();
  std::vector<rtree::LeafEntry> tuples;
  std::vector<uint8_t> buf;
  for (Node& node : nodes_) {
    if (!node.is_leaf) continue;
    tuples.clear();
    tuples.reserve(node.member_slots.size());
    for (uint32_t slot : node.member_slots) {
      const Member& m = members_[slot];
      tuples.push_back({m.id, m.region, m.ptr});
    }
    const size_t per_page = static_cast<size_t>(options_.leaf_fanout);
    UVD_DCHECK_LE(tuples.size(), LeafCapacity(node));
    node.pages.reserve(node.num_pages);
    for (size_t p = 0; p < node.num_pages; ++p) {
      const size_t begin = p * per_page;
      const size_t count =
          begin >= tuples.size() ? 0 : std::min(per_page, tuples.size() - begin);
      buf.clear();
      rtree::EncodeLeafEntries(tuples.data() + begin, count, &buf);
      const storage::PageId page = pm_->Allocate();
      UVD_RETURN_NOT_OK(pm_->Write(page, buf));
      node.pages.push_back(page);
    }
  }
  // Drop the construction caches; ids/regions stay for pattern analysis.
  for (Member& m : members_) {
    m.cr_regions.clear();
    m.cr_regions.shrink_to_fit();
    m.cell.reset();
  }
  for (Node& node : nodes_) {
    for (auto& list : node.split_cache) {
      list.clear();
      list.shrink_to_fit();
    }
    node.split_cache_valid = false;
  }
  finalized_ = true;
  return Status::OK();
}

Status UVIndex::InsertObjectLive(const geom::Circle& region, int id,
                                 uncertain::ObjectPtr ptr,
                                 std::vector<geom::Circle> cr_regions) {
  if (!finalized_) {
    return Status::InvalidArgument(
        "live insertion requires a finalized index; use InsertObject");
  }
  if (!options_.accept_border_objects && !domain_.Contains(region.center)) {
    return Status::InvalidArgument("object center outside the domain");
  }
  members_.push_back(MakeMember(region, id, ptr, std::move(cr_regions)));
  const uint32_t slot = static_cast<uint32_t>(members_.size() - 1);

  // Collect the overlapped leaves (no splits in live mode).
  std::vector<uint32_t> leaves;
  std::vector<uint32_t> stack = {root()};
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    if (!CheckOverlap(members_[slot], nodes_[idx].region)) continue;
    if (nodes_[idx].is_leaf) {
      leaves.push_back(idx);
    } else {
      for (uint32_t c : nodes_[idx].children) stack.push_back(c);
    }
  }

  // Append the tuple to each leaf's page chain, rewriting only the tail
  // page (allocating a fresh one on overflow).
  const size_t per_page = static_cast<size_t>(options_.leaf_fanout);
  std::vector<uint8_t> buf;
  std::vector<rtree::LeafEntry> tail;
  for (uint32_t leaf : leaves) {
    Node& node = nodes_[leaf];
    const size_t count = node.member_slots.size();
    if (count == LeafCapacity(node)) {
      node.num_pages += 1;
      node.pages.push_back(pm_->Allocate());
    }
    node.member_slots.push_back(slot);
    // Rebuild the tail page from its resident slots plus the new tuple.
    const size_t tail_index = count / per_page;
    tail.clear();
    for (size_t i = tail_index * per_page; i < node.member_slots.size(); ++i) {
      const Member& m = members_[node.member_slots[i]];
      tail.push_back({m.id, m.region, m.ptr});
    }
    buf.clear();
    rtree::EncodeLeafEntries(tail.data(), tail.size(), &buf);
    UVD_RETURN_NOT_OK(pm_->Write(node.pages[tail_index], buf));
  }

  // Match Finalize(): drop the construction caches for the new member.
  members_[slot].cr_regions.clear();
  members_[slot].cr_regions.shrink_to_fit();
  members_[slot].cell.reset();
  return Status::OK();
}

uint32_t UVIndex::LocateLeaf(const geom::Point& q) const {
  uint32_t idx = root();
  while (!nodes_[idx].is_leaf) {
    if (stats_ != nullptr) stats_->Add(Ticker::kUvIndexNodeVisits);
    const Node& node = nodes_[idx];
    const geom::Point c = node.region.Center();
    const int k = (q.x >= c.x ? 1 : 0) + (q.y >= c.y ? 2 : 0);
    idx = node.children[static_cast<size_t>(k)];
  }
  return idx;
}

bool UVIndex::OwnsPoint(const geom::Point& q) const {
  return domain_.ContainsHalfOpen(q);
}

Result<uint32_t> UVIndex::LocateLeafChecked(const geom::Point& q) const {
  if (!finalized_) {
    return Status::Internal("index must be finalized before queries");
  }
  // Acceptance is the closed domain: ownership at interior boundaries is
  // half-open [min, max) — a cut-line point between two indexes tiling a
  // larger domain belongs to the upper/right index alone (OwnsPoint; the
  // >= descent in LocateLeaf treats interior leaf boundaries the same
  // way) — but the domain's own max edge has no upper neighbor, so it
  // stays closed and a probe exactly on it is answered by the max-edge
  // leaves instead of being dropped. Routers combine OwnsPoint with a
  // max-edge clamp, so cut-line routing yields no drops and no
  // double-answers (ShardedUVDiagram::ShardIndexForPoint).
  if (!domain_.Contains(q)) {
    return Status::InvalidArgument("query point outside the domain");
  }
  return LocateLeaf(q);
}

Result<std::vector<rtree::LeafEntry>> UVIndex::ReadLeafEntries(uint32_t leaf) const {
  std::vector<rtree::LeafEntry> out;
  std::vector<uint8_t> buf;
  for (storage::PageId page : nodes_[leaf].pages) {
    if (stats_ != nullptr) stats_->Add(Ticker::kUvIndexLeafReads);
    UVD_RETURN_NOT_OK(pm_->Read(page, &buf));
    rtree::DecodeLeafEntries(buf, &out);
  }
  return out;
}

Result<std::vector<rtree::LeafEntry>> UVIndex::RetrieveCandidates(
    const geom::Point& q) const {
  UVD_ASSIGN_OR_RETURN(const uint32_t leaf, LocateLeafChecked(q));
  return ReadLeafEntries(leaf);
}

size_t UVIndex::num_leaves() const {
  size_t n = 0;
  for (const Node& node : nodes_) n += node.is_leaf ? 1 : 0;
  return n;
}

size_t UVIndex::total_leaf_pages() const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) n += node.num_pages;
  }
  return n;
}

int UVIndex::height() const {
  // Depth from the root region: each level halves the extent.
  int max_depth = 1;
  struct Item {
    uint32_t idx;
    int depth;
  };
  std::vector<Item> stack = {{root(), 1}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, item.depth);
    const Node& node = nodes_[item.idx];
    if (!node.is_leaf) {
      for (uint32_t c : node.children) stack.push_back({c, item.depth + 1});
    }
  }
  return max_depth;
}

size_t UVIndex::LeafObjectCount(uint32_t node_index) const {
  UVD_DCHECK(nodes_[node_index].is_leaf);
  return nodes_[node_index].member_slots.size();
}

bool UvCellMayOverlap(const geom::Circle& region,
                      const std::vector<geom::Circle>& cr_regions,
                      const geom::Box& box, Stats* stats) {
  if (stats != nullptr) stats->Add(Ticker::kOverlapChecks);
  // Same Algorithm 5 logic as UVIndex::CheckOverlap, minus the per-member
  // memoization: the cell cannot overlap `box` iff some cr-object's convex
  // outside region contains it (4-point corner test). Monotone under box
  // containment — if it reports "no overlap" for a shard box, it would for
  // every leaf inside that box too — which is what makes shard-border
  // registration by this test conservative (Lemma 4 end to end).
  for (const geom::Circle& cr : cr_regions) {
    if (UVEdge(region, cr, /*j_id=*/-1).RegionInOutside(box, stats)) return false;
  }
  return true;
}

std::vector<int> UVIndex::LeafObjectIds(uint32_t node_index) const {
  UVD_DCHECK(nodes_[node_index].is_leaf);
  std::vector<int> ids;
  ids.reserve(nodes_[node_index].member_slots.size());
  for (uint32_t slot : nodes_[node_index].member_slots) {
    ids.push_back(members_[slot].id);
  }
  return ids;
}

}  // namespace core
}  // namespace uvd
