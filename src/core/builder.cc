#include "core/builder.h"

namespace uvd {
namespace core {

Status BuildUvIndex(const std::vector<uncertain::UncertainObject>& objects,
                    const std::vector<uncertain::ObjectPtr>& ptrs,
                    const rtree::RTree& tree, const geom::Box& domain,
                    BuildMethod method, const CrFinderOptions& cr_options,
                    UVIndex* index, BuildStats* build_stats, Stats* stats,
                    int build_threads) {
  BuildPipelineOptions options;
  options.method = method;
  options.cr = cr_options;
  // The pipeline knob overrides cr.kernel_mode; honor the caller's choice.
  options.kernel_mode = cr_options.kernel_mode;
  options.build_threads = build_threads;
  return RunBuildPipeline(objects, ptrs, tree, domain, options, index, build_stats,
                          stats);
}

}  // namespace core
}  // namespace uvd
