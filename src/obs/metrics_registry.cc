#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace uvd {
namespace obs {

void MetricsRegistry::RegisterStats(const std::string& prefix, const Stats* stats) {
  MutexLock lock(mu_);
  stats_.emplace_back(prefix, stats);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const LatencyHistogram* histogram) {
  MutexLock lock(mu_);
  histograms_.emplace_back(name, histogram);
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    std::function<double()> fn) {
  MutexLock lock(mu_);
  gauges_.emplace_back(name, std::move(fn));
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      std::function<uint64_t()> fn) {
  MutexLock lock(mu_);
  counters_.emplace_back(name, std::move(fn));
}

void MetricsRegistry::Clear() {
  MutexLock lock(mu_);
  stats_.clear();
  histograms_.clear();
  gauges_.clear();
  counters_.clear();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot(
    bool include_zero_counters) const {
  Snapshot snap;
  MutexLock lock(mu_);
  for (const auto& [prefix, stats] : stats_) {
    for (uint32_t t = 0; t < static_cast<uint32_t>(Ticker::kNumTickers); ++t) {
      const uint64_t value = stats->Get(static_cast<Ticker>(t));
      if (value == 0 && !include_zero_counters) continue;
      snap.counters.emplace_back(prefix + "." + TickerName(static_cast<Ticker>(t)),
                                 value);
    }
  }
  for (const auto& [name, fn] : counters_) {
    const uint64_t value = fn();
    if (value == 0 && !include_zero_counters) continue;
    snap.counters.emplace_back(name, value);
  }
  for (const auto& [name, fn] : gauges_) snap.gauges.emplace_back(name, fn());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->TakeSnapshot());
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Registered names use
/// dots; sanitize every other character to '_' and prefix the project
/// namespace.
std::string PrometheusName(const std::string& name) {
  std::string out = "uvd_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(counters[i].first)
        << "\": " << counters[i].second;
  }
  out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(gauges[i].first)
        << "\": " << FormatDouble(gauges[i].second);
  }
  out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const LatencyHistogram::Snapshot& h = histograms[i].second;
    out << (i == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(histograms[i].first)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"mean\": " << FormatDouble(h.mean) << ", \"p50\": " << h.p50
        << ", \"p90\": " << h.p90 << ", \"p99\": " << h.p99
        << ", \"p999\": " << h.p999 << "}";
  }
  out << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsRegistry::Snapshot::ToPrometheus() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << FormatDouble(value) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " summary\n";
    out << p << "{quantile=\"0.5\"} " << h.p50 << "\n";
    out << p << "{quantile=\"0.9\"} " << h.p90 << "\n";
    out << p << "{quantile=\"0.99\"} " << h.p99 << "\n";
    out << p << "{quantile=\"0.999\"} " << h.p999 << "\n";
    out << p << "_sum " << h.sum << "\n";
    out << p << "_count " << h.count << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace uvd
