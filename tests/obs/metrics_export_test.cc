// Golden-file tests for the unified metrics surface: the registry's JSON
// and Prometheus text exports are pinned byte for byte from a
// hand-populated registry (deterministic inputs — no clocks), alongside
// the Stats::ToJson determinism contract (enum order, zero filtering).
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>

#include "common/stats.h"
#include "obs/latency_histogram.h"

namespace uvd {
namespace obs {
namespace {

TEST(StatsToJsonTest, EnumOrderAndZeroFiltering) {
  Stats stats;
  stats.Add(Ticker::kPageWrites, 3);
  stats.Add(Ticker::kPageReads, 7);
  // include_zeros=false keeps only the set tickers, in enum order (reads
  // before writes regardless of Add order).
  EXPECT_EQ(stats.ToJson(/*include_zeros=*/false),
            "{\"page.reads\": 7, \"page.writes\": 3}");
  // The default (include_zeros=true) always emits every ticker, so two
  // snapshots of any two runs have identical key sets.
  const std::string full = stats.ToJson();
  EXPECT_NE(full.find("\"page.reads\": 7"), std::string::npos);
  EXPECT_NE(full.find("\"bufferpool.hits\": 0"), std::string::npos);
  EXPECT_EQ(full, stats.ToJson());  // deterministic
}

/// A registry with two counters, one gauge and one histogram — registered
/// deliberately out of name order to pin the sort.
MetricsRegistry::Snapshot GoldenSnapshot() {
  static LatencyHistogram histogram;  // static: must outlive the snapshot
  histogram.Reset();
  histogram.RecordMany(10, 98);
  histogram.Record(100);
  histogram.Record(1000);

  MetricsRegistry registry;
  registry.RegisterHistogram("query.pnn.latency.us", &histogram);
  registry.RegisterCounter("router.fanout.total", [] { return uint64_t{42}; });
  registry.RegisterCounter("cache.lookups", [] { return uint64_t{7}; });
  registry.RegisterGauge("router.shard_imbalance", [] { return 1.25; });
  return registry.TakeSnapshot();
}

TEST(MetricsExportTest, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"cache.lookups\": 7,\n"
      "    \"router.fanout.total\": 42\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"router.shard_imbalance\": 1.25\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"query.pnn.latency.us\": {\"count\": 100, \"sum\": 2080, "
      "\"min\": 10, \"max\": 1000, \"mean\": 20.8, \"p50\": 10, \"p90\": 10, "
      "\"p99\": 103, \"p999\": 1000}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(GoldenSnapshot().ToJson(), expected);
}

TEST(MetricsExportTest, PrometheusGolden) {
  const std::string expected =
      "# TYPE uvd_cache_lookups counter\n"
      "uvd_cache_lookups 7\n"
      "# TYPE uvd_router_fanout_total counter\n"
      "uvd_router_fanout_total 42\n"
      "# TYPE uvd_router_shard_imbalance gauge\n"
      "uvd_router_shard_imbalance 1.25\n"
      "# TYPE uvd_query_pnn_latency_us summary\n"
      "uvd_query_pnn_latency_us{quantile=\"0.5\"} 10\n"
      "uvd_query_pnn_latency_us{quantile=\"0.9\"} 10\n"
      "uvd_query_pnn_latency_us{quantile=\"0.99\"} 103\n"
      "uvd_query_pnn_latency_us{quantile=\"0.999\"} 1000\n"
      "uvd_query_pnn_latency_us_sum 2080\n"
      "uvd_query_pnn_latency_us_count 100\n";
  EXPECT_EQ(GoldenSnapshot().ToPrometheus(), expected);
}

TEST(MetricsExportTest, EmptyRegistryExports) {
  MetricsRegistry registry;
  const auto snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.ToJson(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": "
            "{}\n}\n");
  EXPECT_EQ(snap.ToPrometheus(), "");
}

TEST(MetricsExportTest, StatsExpandToPrefixedCounters) {
  Stats stats;
  stats.Add(Ticker::kPageReads, 11);
  MetricsRegistry registry;
  registry.RegisterStats("shard0", &stats);
  const auto snap = registry.TakeSnapshot(/*include_zero_counters=*/false);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "shard0.page.reads");
  EXPECT_EQ(snap.counters[0].second, 11u);
  // With zeros included, every ticker appears under the prefix.
  const auto full = registry.TakeSnapshot();
  EXPECT_GT(full.counters.size(), 1u);
  for (const auto& [name, value] : full.counters) {
    EXPECT_EQ(name.rfind("shard0.", 0), 0u) << name;
  }
}

TEST(MetricsExportTest, SnapshotsAreLazy) {
  // Sources are sampled at TakeSnapshot time, not registration time.
  uint64_t calls = 0;
  MetricsRegistry registry;
  registry.RegisterCounter("lazy.counter", [&calls] { return ++calls; });
  EXPECT_EQ(calls, 0u);
  const auto first = registry.TakeSnapshot();
  const auto second = registry.TakeSnapshot();
  EXPECT_EQ(first.counters[0].second, 1u);
  EXPECT_EQ(second.counters[0].second, 2u);
}

}  // namespace
}  // namespace obs
}  // namespace uvd
