#include "geom/batch/kernels.h"

#include <algorithm>
#include <cmath>

// The explicit intrinsics path. This translation unit is compiled with
// -mavx2 when the UVD_ENABLE_SIMD build option is on and the toolchain
// supports it (see CMakeLists.txt); NEON is unconditionally available on
// aarch64. Both paths use only individually-rounded sub/mul/add/sqrt/cmp
// operations — no FMA — so lane results are bitwise identical to the
// scalar fallback.
#if defined(UVD_ENABLE_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#define UVD_SIMD_AVX2 1
#elif defined(UVD_ENABLE_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define UVD_SIMD_NEON 1
#endif

namespace uvd {
namespace geom {

const char* KernelModeName(KernelMode m) {
  switch (m) {
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kBatch:
      return "batch";
  }
  return "unknown";
}

namespace batch {

bool SimdEnabled() {
#if defined(UVD_SIMD_AVX2) || defined(UVD_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

const char* SimdIsa() {
#if defined(UVD_SIMD_AVX2)
  return "avx2";
#elif defined(UVD_SIMD_NEON)
  return "neon";
#else
  return "blocks";
#endif
}

void CircleSoA::Clear() {
  xs.clear();
  ys.clear();
  rs.clear();
}

void CircleSoA::Assign(const Circle* circles, size_t n) {
  xs.resize(n);
  ys.resize(n);
  rs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = circles[i].center.x;
    ys[i] = circles[i].center.y;
    rs[i] = circles[i].radius;
  }
}

void AnyHullCircleContains(const double* xs, const double* ys, size_t n,
                           const Point* hull, const double* hull_dist2,
                           size_t hull_size, uint8_t* keep) {
  std::fill(keep, keep + n, uint8_t{0});
#if defined(UVD_SIMD_AVX2)
  for (size_t m = 0; m < hull_size; ++m) {
    const __m256d hx = _mm256_set1_pd(hull[m].x);
    const __m256d hy = _mm256_set1_pd(hull[m].y);
    const __m256d hd2 = _mm256_set1_pd(hull_dist2[m]);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), hx);
      const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), hy);
      const __m256d d2 =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, hd2, _CMP_LE_OQ));
      if (mask & 1) keep[i + 0] = 1;
      if (mask & 2) keep[i + 1] = 1;
      if (mask & 4) keep[i + 2] = 1;
      if (mask & 8) keep[i + 3] = 1;
    }
    for (; i < n; ++i) {
      const double dx = xs[i] - hull[m].x;
      const double dy = ys[i] - hull[m].y;
      if (dx * dx + dy * dy <= hull_dist2[m]) keep[i] = 1;
    }
  }
#else
  // Hull-outer / candidate-inner keeps the inner loop a pure independent-
  // lane map that -O3 (or NEON below a wider sweep) vectorizes.
  for (size_t m = 0; m < hull_size; ++m) {
    const double hx = hull[m].x;
    const double hy = hull[m].y;
    const double hd2 = hull_dist2[m];
    for (size_t i = 0; i < n; ++i) {
      const double dx = xs[i] - hx;
      const double dy = ys[i] - hy;
      if (dx * dx + dy * dy <= hd2) keep[i] = 1;
    }
  }
#endif
}

namespace {

/// Scalar tail for FindContainingOutsideRegion: exactly the per-corner
/// comparison of UVEdge::InOutsideRegion.
inline bool OutsideRegionContainsBox(double cx, double cy, double r,
                                     const double* corner_x,
                                     const double* corner_y,
                                     const double* corner_dmin) {
  for (int c = 0; c < 4; ++c) {
    const double dx = corner_x[c] - cx;
    const double dy = corner_y[c] - cy;
    const double dist_max = std::sqrt(dx * dx + dy * dy) + r;
    if (!(corner_dmin[c] > dist_max)) return false;
  }
  return true;
}

}  // namespace

ptrdiff_t FindContainingOutsideRegion(const CircleSoA& candidates,
                                      const double* corner_x,
                                      const double* corner_y,
                                      const double* corner_dmin,
                                      size_t* evaluated) {
  const size_t n = candidates.size();
  const double* xs = candidates.xs.data();
  const double* ys = candidates.ys.data();
  const double* rs = candidates.rs.data();
  size_t seen = 0;
  size_t i = 0;
#if defined(UVD_SIMD_AVX2)
  for (; i + 4 <= n; i += 4) {
    seen += 4;
    const __m256d vx = _mm256_loadu_pd(xs + i);
    const __m256d vy = _mm256_loadu_pd(ys + i);
    const __m256d vr = _mm256_loadu_pd(rs + i);
    int alive = 0xf;
    for (int c = 0; c < 4 && alive != 0; ++c) {
      const __m256d dx = _mm256_sub_pd(_mm256_set1_pd(corner_x[c]), vx);
      const __m256d dy = _mm256_sub_pd(_mm256_set1_pd(corner_y[c]), vy);
      const __m256d d2 =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      const __m256d dist_max = _mm256_add_pd(_mm256_sqrt_pd(d2), vr);
      alive &= _mm256_movemask_pd(
          _mm256_cmp_pd(_mm256_set1_pd(corner_dmin[c]), dist_max, _CMP_GT_OQ));
    }
    if (alive != 0) {
      if (evaluated != nullptr) *evaluated = seen;
      // Lowest surviving lane = first candidate in scan order.
      for (int lane = 0; lane < 4; ++lane) {
        if (alive & (1 << lane)) return static_cast<ptrdiff_t>(i) + lane;
      }
    }
  }
#else
  for (; i + kLanes <= n; i += kLanes) {
    seen += kLanes;
    uint8_t alive[kLanes];
    // Corner-outer over a fixed-width block: each corner pass is an
    // independent-lane map (sub/mul/add/sqrt/cmp) that autovectorizes.
    for (size_t l = 0; l < kLanes; ++l) alive[l] = 1;
    for (int c = 0; c < 4; ++c) {
      const double px = corner_x[c];
      const double py = corner_y[c];
      const double dmin = corner_dmin[c];
      for (size_t l = 0; l < kLanes; ++l) {
        const double dx = px - xs[i + l];
        const double dy = py - ys[i + l];
        const double dist_max = std::sqrt(dx * dx + dy * dy) + rs[i + l];
        alive[l] = static_cast<uint8_t>(alive[l] & (dmin > dist_max ? 1 : 0));
      }
    }
    for (size_t l = 0; l < kLanes; ++l) {
      if (alive[l]) {
        if (evaluated != nullptr) *evaluated = seen;
        return static_cast<ptrdiff_t>(i + l);
      }
    }
  }
#endif
  for (; i < n; ++i) {
    ++seen;
    if (OutsideRegionContainsBox(xs[i], ys[i], rs[i], corner_x, corner_y,
                                 corner_dmin)) {
      if (evaluated != nullptr) *evaluated = seen;
      return static_cast<ptrdiff_t>(i);
    }
  }
  if (evaluated != nullptr) *evaluated = seen;
  return -1;
}

void BuildConstraintPrefilter(const Circle& anchor, const Circle* others,
                              size_t n, ConstraintPrefilter* out) {
  out->min_rho.resize(n);
  out->vacuous.resize(n);
  const double ax = anchor.center.x;
  const double ay = anchor.center.y;
  const double ar = anchor.radius;
  double* min_rho = out->min_rho.data();
  uint8_t* vacuous = out->vacuous.data();
  for (size_t j = 0; j < n; ++j) {
    const double wx = others[j].center.x - ax;
    const double wy = others[j].center.y - ay;
    const double s = ar + others[j].radius;
    const double n2 = wx * wx + wy * wy;
    vacuous[j] = n2 <= s * s ? 1 : 0;
    min_rho[j] = 0.5 * (std::sqrt(n2) + s);
  }
}

}  // namespace batch
}  // namespace geom
}  // namespace uvd
