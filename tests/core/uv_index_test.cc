// Tests for the UV-index (Algorithms 3-5): the no-false-exclusion
// guarantee of Lemma 4, split behaviour under T_theta and M, page
// accounting and point location.
#include "core/uv_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common/random.h"
#include "core/builder.h"
#include "core/pnn.h"
#include "datagen/generators.h"

namespace uvd {
namespace core {
namespace {

struct Fixture {
  Stats stats;
  storage::PageManager pm{4096, &stats};
  uncertain::ObjectStore store{&pm};
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<rtree::RTree> tree;
  std::optional<UVIndex> index;
  geom::Box domain;

  void Build(size_t n, uint64_t seed, UVIndexOptions idx_opts = {},
             BuildMethod method = BuildMethod::kIC, double diameter = 40,
             double domain_size = 10000) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = seed;
    opts.diameter = diameter;
    opts.domain_size = domain_size;
    objects = datagen::GenerateUniform(opts);
    domain = datagen::DomainFor(opts);
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    tree.emplace(rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie());
    index.emplace(domain, &pm, idx_opts, &stats);
    UVD_CHECK_OK(BuildUvIndex(objects, ptrs, *tree, domain, method, {}, &*index,
                              nullptr, &stats));
  }

  std::vector<int> BruteAnswers(const geom::Point& q) const {
    double d_minmax = std::numeric_limits<double>::infinity();
    for (const auto& o : objects) d_minmax = std::min(d_minmax, o.DistMax(q));
    std::vector<int> ids;
    for (const auto& o : objects) {
      if (o.DistMin(q) <= d_minmax) ids.push_back(o.id());
    }
    return ids;
  }
};

TEST(UvIndexTest, AnswersMatchBruteForceExactly) {
  // End-to-end Lemma 4 check: retrieved tuples may be a superset of the
  // answer set, but after the d_minmax verification they must equal it.
  Fixture f;
  f.Build(1500, 13);
  Rng rng(7);
  for (int t = 0; t < 60; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const std::vector<int> got =
        RetrievePnnAnswerIds(*f.index, q, &f.stats).ValueOrDie();
    EXPECT_EQ(got, f.BruteAnswers(q)) << "t=" << t;
  }
}

TEST(UvIndexTest, RetrievedTuplesAreSuperset) {
  Fixture f;
  f.Build(800, 29);
  Rng rng(11);
  for (int t = 0; t < 40; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    auto tuples = f.index->RetrieveCandidates(q);
    ASSERT_TRUE(tuples.ok());
    std::vector<int> got;
    for (const auto& e : tuples.value()) got.push_back(e.id);
    std::sort(got.begin(), got.end());
    for (int id : f.BruteAnswers(q)) {
      EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id))
          << "false exclusion of answer object " << id;
    }
  }
}

TEST(UvIndexTest, SplitsHappenOnRealisticData) {
  Fixture f;
  f.Build(3000, 31);
  EXPECT_GT(f.index->num_nonleaf(), 1);
  EXPECT_GT(f.index->num_leaves(), 4u);
  EXPECT_GT(f.index->height(), 1);
}

TEST(UvIndexTest, ZeroThresholdNeverSplits) {
  // T_theta = 0: theta < 0 is impossible, the grid degrades into one long
  // page list (the paper's sensitivity observation for small T_theta).
  UVIndexOptions opts;
  opts.split_threshold = 0.0;
  Fixture f;
  f.Build(1200, 37, opts);
  EXPECT_EQ(f.index->num_leaves(), 1u);
  EXPECT_GE(f.index->total_leaf_pages(), 1200u / 100u);
  // Queries still correct, just slower.
  Rng rng(3);
  for (int t = 0; t < 10; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    EXPECT_EQ(RetrievePnnAnswerIds(*f.index, q).ValueOrDie(), f.BruteAnswers(q));
  }
}

TEST(UvIndexTest, NonleafBudgetRespected) {
  UVIndexOptions opts;
  opts.max_nonleaf = 6;  // tiny M: at most 6 non-leaf allocations
  Fixture f;
  f.Build(2000, 41, opts);
  EXPECT_LE(f.index->num_nonleaf(), 6);
  Rng rng(9);
  for (int t = 0; t < 10; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    EXPECT_EQ(RetrievePnnAnswerIds(*f.index, q).ValueOrDie(), f.BruteAnswers(q));
  }
}

TEST(UvIndexTest, LeafReadsAreCounted) {
  Fixture f;
  f.Build(1000, 43);
  f.stats.Reset();
  auto tuples = f.index->RetrieveCandidates({5000, 5000});
  ASSERT_TRUE(tuples.ok());
  EXPECT_GE(f.stats.Get(Ticker::kUvIndexLeafReads), 1u);
  EXPECT_EQ(f.stats.Get(Ticker::kUvIndexLeafReads), f.stats.Get(Ticker::kPageReads));
}

TEST(UvIndexTest, LocateLeafConsistentWithRegions) {
  Fixture f;
  f.Build(2000, 47);
  Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const uint32_t leaf = f.index->LocateLeaf(q);
    EXPECT_TRUE(f.index->nodes()[leaf].region.Contains(q));
  }
  // Domain corners and the exact center resolve to a leaf.
  for (const geom::Point& p : f.domain.Corners()) {
    const uint32_t leaf = f.index->LocateLeaf(p);
    EXPECT_TRUE(f.index->nodes()[leaf].region.Contains(p));
  }
  EXPECT_TRUE(
      f.index->nodes()[f.index->LocateLeaf(f.domain.Center())].region.Contains(
          f.domain.Center()));
}

TEST(UvIndexTest, QueriesRequireFinalize) {
  Stats stats;
  storage::PageManager pm(4096, &stats);
  UVIndex index(geom::Box({0, 0}, {100, 100}), &pm, {}, &stats);
  auto result = index.RetrieveCandidates({50, 50});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(UvIndexTest, InsertAfterFinalizeRejected) {
  Stats stats;
  storage::PageManager pm(4096, &stats);
  UVIndex index(geom::Box({0, 0}, {100, 100}), &pm, {}, &stats);
  ASSERT_TRUE(index.InsertObject({{50, 50}, 5}, 0, 0, {}).ok());
  ASSERT_TRUE(index.Finalize().ok());
  EXPECT_FALSE(index.InsertObject({{60, 60}, 5}, 1, 0, {}).ok());
}

TEST(UvIndexTest, QueryOutsideDomainRejected) {
  Fixture f;
  f.Build(100, 53);
  EXPECT_FALSE(f.index->RetrieveCandidates({-1, 50}).ok());
  EXPECT_FALSE(f.index->RetrieveCandidates({20000, 50}).ok());
}

TEST(UvIndexTest, MaxEdgeProbesAreAnsweredNotDropped) {
  // Regression for the sharded-serving boundary semantics: the domain's
  // max edge has no upper neighbor, so it stays closed — probes exactly on
  // it (edges and the far corner) must locate a leaf and answer, not be
  // rejected as out-of-domain.
  Fixture f;
  f.Build(300, 67);
  const double hi_x = f.domain.hi.x;
  const double hi_y = f.domain.hi.y;
  for (const geom::Point q : {geom::Point{hi_x, 5000.0}, geom::Point{5000.0, hi_y},
                              geom::Point{hi_x, hi_y}, geom::Point{hi_x, f.domain.lo.y},
                              geom::Point{f.domain.lo.x, hi_y}}) {
    auto leaf = f.index->LocateLeafChecked(q);
    ASSERT_TRUE(leaf.ok()) << "(" << q.x << ", " << q.y << ")";
    EXPECT_TRUE(f.index->nodes()[leaf.value()].region.Contains(q));
    auto answers = RetrievePnnAnswerIds(*f.index, q, &f.stats);
    ASSERT_TRUE(answers.ok());
    EXPECT_EQ(answers.value(), f.BruteAnswers(q));
  }
}

TEST(UvIndexTest, OwnsPointIsHalfOpen) {
  // [min, max) ownership: min edges owned, max edges not (they belong to
  // the upper/right neighbor in a tiled deployment — or, on the global
  // boundary, to the closed-max-edge acceptance of LocateLeafChecked).
  Fixture f;
  f.Build(100, 71);
  EXPECT_TRUE(f.index->OwnsPoint({f.domain.lo.x, f.domain.lo.y}));
  EXPECT_TRUE(f.index->OwnsPoint({5000, 5000}));
  EXPECT_FALSE(f.index->OwnsPoint({f.domain.hi.x, 5000}));
  EXPECT_FALSE(f.index->OwnsPoint({5000, f.domain.hi.y}));
  EXPECT_FALSE(f.index->OwnsPoint({f.domain.hi.x, f.domain.hi.y}));
  EXPECT_FALSE(f.index->OwnsPoint({f.domain.lo.x - 1, 5000}));
}

TEST(UvIndexTest, AdjacentIndexesOwnCutLinePointsExactlyOnce) {
  // Two indexes tiling [0,100]x[0,100] at x=50: every probe on the cut
  // line is owned by exactly one of them (the right one), so a router
  // produces no drops and no double-answers.
  Stats stats;
  storage::PageManager pm(4096, &stats);
  const geom::Box left({0, 0}, {50, 100});
  const geom::Box right({50, 0}, {100, 100});
  UVIndex left_index(left, &pm, {}, &stats);
  UVIndex right_index(right, &pm, {}, &stats);
  for (double y : {0.0, 25.0, 99.0, 100.0}) {
    const geom::Point q{50, y};
    EXPECT_EQ((left_index.OwnsPoint(q) ? 1 : 0) + (right_index.OwnsPoint(q) ? 1 : 0),
              y < 100.0 ? 1 : 0)
        << "y=" << y;
    EXPECT_FALSE(left_index.OwnsPoint(q));
  }
}

TEST(UvIndexTest, BorderObjectsRequireOptIn) {
  Stats stats;
  storage::PageManager pm(4096, &stats);
  const geom::Box domain({0, 0}, {100, 100});
  UVIndex strict(domain, &pm, {}, &stats);
  EXPECT_FALSE(strict.InsertObject({{120, 50}, 5}, 0, 0, {}).ok());

  UVIndexOptions border;
  border.accept_border_objects = true;
  UVIndex shard(domain, &pm, border, &stats);
  ASSERT_TRUE(shard.InsertObject({{120, 50}, 5}, 0, 0, {}).ok());
  ASSERT_TRUE(shard.InsertObject({{50, 50}, 5}, 1, 0, {}).ok());
  ASSERT_TRUE(shard.Finalize().ok());
  // The external member still lands in leaves (its cell overlaps the
  // domain when no cr-object excludes it), exactly what border
  // replication relies on.
  auto tuples = shard.RetrieveCandidates({50, 50});
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples.value().size(), 2u);
}

TEST(UvIndexTest, UvCellMayOverlapIsConservativeAndMonotone) {
  const geom::Circle region({10, 50}, 5);
  // One competitor far to the right: its outside region covers boxes far
  // right of the anchor but never boxes containing the anchor.
  const std::vector<geom::Circle> crs = {{{90, 50}, 5}};
  const geom::Box near_anchor({0, 40}, {20, 60});
  const geom::Box far_right({80, 40}, {99, 60});
  EXPECT_TRUE(UvCellMayOverlap(region, crs, near_anchor));
  EXPECT_FALSE(UvCellMayOverlap(region, crs, far_right));
  // Monotone under containment: a sub-box of a proven-disjoint box is
  // proven disjoint too (the shard-registration soundness argument).
  const geom::Box sub({85, 45}, {95, 55});
  EXPECT_FALSE(UvCellMayOverlap(region, crs, sub));
  // No competitors: the cell is the whole domain, everything overlaps.
  EXPECT_TRUE(UvCellMayOverlap(region, {}, far_right));
}

TEST(UvIndexTest, QuadrantRegionsTileParents) {
  Fixture f;
  f.Build(2500, 59);
  for (const UVIndex::Node& node : f.index->nodes()) {
    if (node.is_leaf) continue;
    double child_area = 0;
    for (uint32_t c : node.children) {
      const auto& child = f.index->nodes()[c];
      EXPECT_TRUE(node.region.ContainsBox(child.region));
      child_area += child.region.Area();
    }
    EXPECT_NEAR(child_area, node.region.Area(), 1e-6 * node.region.Area());
  }
}

TEST(UvIndexTest, PaperMemoryModel) {
  Fixture f;
  f.Build(2000, 61);
  EXPECT_EQ(f.index->PaperMemoryBytes(),
            16u * static_cast<size_t>(f.index->num_nonleaf()));
}

TEST(UvIndexTest, DuplicateCentersHandled) {
  // Identical objects stacked at one point plus a few others.
  datagen::DatasetOptions opts;
  opts.count = 0;
  Stats stats;
  storage::PageManager pm(4096, &stats);
  uncertain::ObjectStore store(&pm);
  std::vector<uncertain::UncertainObject> objs;
  for (int i = 0; i < 5; ++i) {
    objs.push_back(uncertain::UncertainObject::WithGaussianPdf(i, {{5000, 5000}, 20}));
  }
  objs.push_back(uncertain::UncertainObject::WithGaussianPdf(5, {{2000, 2000}, 20}));
  std::vector<uncertain::ObjectPtr> ptrs;
  UVD_CHECK_OK(store.BulkLoad(objs, &ptrs));
  auto tree =
      rtree::RTree::BulkLoad(objs, ptrs, &pm, {100}, &stats).ValueOrDie();
  const geom::Box domain({0, 0}, {10000, 10000});
  UVIndex index(domain, &pm, {}, &stats);
  ASSERT_TRUE(BuildUvIndex(objs, ptrs, tree, domain, BuildMethod::kIC, {}, &index,
                           nullptr, &stats)
                  .ok());
  // All five stacked objects answer at their shared center.
  const auto ids = RetrievePnnAnswerIds(index, {5000, 5000}).ValueOrDie();
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace core
}  // namespace uvd
