// SVG rendering of UV-diagrams (paper Sec. V-C mentions displaying the
// approximate shape of UV-cells on the user's screen). Renders uncertainty
// regions, exact UV-cell boundaries (sampled hyperbolic arcs) and the
// adaptive grid's leaf regions.
#ifndef UVD_CORE_SVG_EXPORT_H_
#define UVD_CORE_SVG_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/uv_cell.h"
#include "core/uv_diagram.h"

namespace uvd {
namespace core {

/// Rendering options.
struct SvgOptions {
  double canvas_px = 800.0;     ///< Output width/height in pixels.
  bool draw_grid = true;        ///< Leaf regions of the UV-index.
  bool draw_objects = true;     ///< Uncertainty circles.
  int samples_per_arc = 24;     ///< Boundary sampling density.
};

/// Renders the diagram (grid + objects) plus the given exact cells into an
/// SVG document string.
std::string RenderSvg(const UVDiagram& diagram, const std::vector<UVCell>& cells,
                      const SvgOptions& options = {});

/// Renders stand-alone cells over a domain (no index required).
std::string RenderCellsSvg(const geom::Box& domain, const std::vector<UVCell>& cells,
                           const SvgOptions& options = {});

/// Writes an SVG string to a file.
Status WriteSvgFile(const std::string& path, const std::string& svg);

}  // namespace core
}  // namespace uvd

#endif  // UVD_CORE_SVG_EXPORT_H_
