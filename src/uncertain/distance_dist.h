// Distance distribution of an uncertain object from a fixed query point:
// the CDF F(d) = P(dist(q, X) <= d) obtained by intersecting the disk
// Cir(q, d) with the pdf's histogram rings. This is the kernel of the
// numerical-integration probability computation of [14] that the paper
// uses for PNN answers (Sec. VI-A).
#ifndef UVD_UNCERTAIN_DISTANCE_DIST_H_
#define UVD_UNCERTAIN_DISTANCE_DIST_H_

#include "geom/point.h"
#include "uncertain/uncertain_object.h"

namespace uvd {
namespace uncertain {

/// CDF of the Euclidean distance between a query point and an uncertain
/// object's (random) position.
class DistanceDistribution {
 public:
  DistanceDistribution(const UncertainObject& obj, geom::Point q);

  /// P(dist(q, X) <= d). Monotone, 0 below dist_min, 1 above dist_max.
  double Cdf(double d) const;

  /// Support bounds: [dist_min(O, q), dist_max(O, q)].
  double lower() const { return lower_; }
  double upper() const { return upper_; }

 private:
  const UncertainObject& obj_;
  geom::Point q_;
  double center_dist_;
  double lower_;
  double upper_;
};

}  // namespace uncertain
}  // namespace uvd

#endif  // UVD_UNCERTAIN_DISTANCE_DIST_H_
