// Deterministic random number generation. All dataset generators and
// Monte-Carlo code take an explicit Rng so that every experiment is
// reproducible from a seed recorded in the bench output.
#ifndef UVD_COMMON_RANDOM_H_
#define UVD_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace uvd {

/// Seeded pseudo-random generator wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Exponential variate with the given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace uvd

#endif  // UVD_COMMON_RANDOM_H_
