// One snapshot for the whole deployment: Stats tickers, latency
// histograms and gauges from every registered layer, exported as JSON or
// Prometheus text format. The per-figure benches each print their own
// slice of the paper's evaluation; the registry is the unified,
// machine-readable view — a serving process registers its engines,
// router, caches and page managers once and scrapes one endpoint-shaped
// document (docs/OBSERVABILITY.md shows both formats).
//
// Sources are registered by pointer / callable and sampled lazily at
// TakeSnapshot time, so registration costs nothing on any hot path.
// Every registered source must outlive the registry's last snapshot.
// Snapshot output is sorted by metric name, so two snapshots of the same
// deployment state diff cleanly (the same determinism discipline as
// Stats::ToJson).
#ifndef UVD_OBS_METRICS_REGISTRY_H_
#define UVD_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "obs/latency_histogram.h"

namespace uvd {
namespace obs {

/// \brief Name -> metric-source registry with JSON / Prometheus export.
///
/// Thread safety: registration and TakeSnapshot are mutex-guarded against
/// each other; the sampled sources themselves are relaxed atomics (Stats,
/// LatencyHistogram) or caller-supplied callables, so snapshots taken
/// while work is in flight are per-metric exact but not a consistent cut
/// — the usual Stats contract.
class MetricsRegistry {
 public:
  /// Registers every ticker of `stats` as a counter named
  /// "<prefix>.<ticker name>" (e.g. "shard0.query.cache.hits").
  void RegisterStats(const std::string& prefix, const Stats* stats);

  /// Registers a single histogram under `name` (suffix the unit, e.g.
  /// "query.pnn.latency.us").
  void RegisterHistogram(const std::string& name, const LatencyHistogram* histogram);

  /// Registers a gauge sampled by calling `fn` (cache occupancy, shard
  /// imbalance, pool queue depth, ...).
  void RegisterGauge(const std::string& name, std::function<double()> fn);

  /// Registers a monotonic counter sampled by calling `fn` (for counters
  /// that are not Stats tickers, e.g. per-shard routed-query counts).
  void RegisterCounter(const std::string& name, std::function<uint64_t()> fn);

  /// Drops every registration.
  void Clear();

  /// The sampled state of every registered source, each section sorted by
  /// name.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> histograms;

    /// Deterministic pretty-printed JSON document:
    ///   {"counters": {...}, "gauges": {...}, "histograms": {name:
    ///    {count, sum, min, max, mean, p50, p90, p99, p999}}}
    std::string ToJson() const;

    /// Prometheus text exposition format: counters and gauges as single
    /// samples, histograms as summaries (quantile-labeled samples plus
    /// _sum/_count). Metric names are sanitized ([a-zA-Z0-9_] with an
    /// "uvd_" prefix), e.g. "query.pnn.latency.us" ->
    /// "uvd_query_pnn_latency_us".
    std::string ToPrometheus() const;
  };

  /// Samples every source. `include_zero_counters` keeps zero-valued
  /// counters in the snapshot (on by default so snapshots of different
  /// runs always have identical key sets and diff cleanly).
  Snapshot TakeSnapshot(bool include_zero_counters = true) const;

 private:
  mutable Mutex mu_;
  std::vector<std::pair<std::string, const Stats*>> stats_ UVD_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> histograms_
      UVD_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::function<double()>>> gauges_
      UVD_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::function<uint64_t()>>> counters_
      UVD_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace uvd

#endif  // UVD_OBS_METRICS_REGISTRY_H_
