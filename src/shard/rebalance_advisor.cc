#include "shard/rebalance_advisor.h"

#include <algorithm>
#include <cstdio>

namespace uvd {
namespace shard {

namespace {

double Imbalance(const std::vector<size_t>& counts) {
  if (counts.empty()) return 1.0;
  size_t total = 0, max_count = 0;
  for (const size_t c : counts) {
    total += c;
    max_count = std::max(max_count, c);
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(counts.size());
  return mean > 0.0 ? static_cast<double>(max_count) / mean : 1.0;
}

}  // namespace

std::string RebalanceAdvice::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "imbalance (max/mean objects): current %.2f, predicted under "
                "median cuts %.2f\n",
                current_imbalance, predicted_imbalance);
  out += line;
  for (size_t s = 0; s < proposed_boxes.size(); ++s) {
    std::snprintf(line, sizeof(line),
                  "  proposed shard %zu: [%.1f, %.1f] x [%.1f, %.1f], ~%zu "
                  "objects\n",
                  s, proposed_boxes[s].lo.x, proposed_boxes[s].hi.x,
                  proposed_boxes[s].lo.y, proposed_boxes[s].hi.y,
                  s < predicted_objects.size() ? predicted_objects[s] : 0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "rebalance recommended: %s\n",
                rebalance_recommended ? "yes (rebuild with kMedian)" : "no");
  out += line;
  return out;
}

RebalanceAdvice RebalanceAdvisor::Advise(const ShardedUVDiagram& diagram,
                                         const RebalanceAdvisorOptions& options) {
  RebalanceAdvice advice;

  std::vector<size_t> current;
  current.reserve(diagram.num_shards());
  for (const auto& b : diagram.BalanceReport()) current.push_back(b.objects);
  advice.current_imbalance = Imbalance(current);

  advice.proposed_boxes =
      PartitionDomain(diagram.domain(), static_cast<int>(diagram.num_shards()),
                      ShardPartitioning::kMedian, diagram.object_extents());

  // Predicted registrations: extent-box vs shard-box intersection — the
  // same weighting the median cuts optimized, approximating the
  // conservative UvCellMayOverlap registration a rebuild would perform.
  advice.predicted_objects.assign(advice.proposed_boxes.size(), 0);
  for (const ObjectExtent& e : diagram.object_extents()) {
    for (size_t s = 0; s < advice.proposed_boxes.size(); ++s) {
      if (e.bounds.Intersects(advice.proposed_boxes[s])) {
        ++advice.predicted_objects[s];
      }
    }
  }
  advice.predicted_imbalance = Imbalance(advice.predicted_objects);

  advice.rebalance_recommended =
      advice.current_imbalance > options.imbalance_threshold &&
      advice.predicted_imbalance <
          advice.current_imbalance * (1.0 - options.min_relative_gain);
  return advice;
}

Result<ShardedUVDiagram> RebalanceAdvisor::ApplyRebalance(
    const ShardedUVDiagram& diagram, Stats* stats) {
  ShardedUVDiagramOptions options = diagram.options();
  options.partitioning = ShardPartitioning::kMedian;
  return ShardedUVDiagram::Build(diagram.objects(), diagram.domain(), options,
                                 stats);
}

}  // namespace shard
}  // namespace uvd
