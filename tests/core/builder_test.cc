// Tests for the Basic / ICR / IC construction methods: all three must
// produce indexes that answer identically; stats decompositions populated.
#include "core/builder.h"

#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "core/pnn.h"
#include "datagen/generators.h"

namespace uvd {
namespace core {
namespace {

struct Built {
  Stats stats;
  std::unique_ptr<storage::PageManager> pm;
  std::unique_ptr<uncertain::ObjectStore> store;
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<rtree::RTree> tree;
  std::optional<UVIndex> index;
  BuildStats build_stats;
};

Built BuildWith(BuildMethod method, size_t n, uint64_t seed) {
  Built b;
  b.pm = std::make_unique<storage::PageManager>(4096, &b.stats);
  b.store = std::make_unique<uncertain::ObjectStore>(b.pm.get());
  datagen::DatasetOptions opts;
  opts.count = n;
  opts.seed = seed;
  b.objects = datagen::GenerateUniform(opts);
  const geom::Box domain = datagen::DomainFor(opts);
  UVD_CHECK_OK(b.store->BulkLoad(b.objects, &b.ptrs));
  b.tree.emplace(
      rtree::RTree::BulkLoad(b.objects, b.ptrs, b.pm.get(), {100}, &b.stats)
          .ValueOrDie());
  b.index.emplace(domain, b.pm.get(), UVIndexOptions{}, &b.stats);
  UVD_CHECK_OK(BuildUvIndex(b.objects, b.ptrs, *b.tree, domain, method, {}, &*b.index,
                            &b.build_stats, &b.stats));
  return b;
}

TEST(BuilderTest, MethodNames) {
  EXPECT_STREQ(BuildMethodName(BuildMethod::kBasic), "Basic");
  EXPECT_STREQ(BuildMethodName(BuildMethod::kICR), "ICR");
  EXPECT_STREQ(BuildMethodName(BuildMethod::kIC), "IC");
}

TEST(BuilderTest, AllMethodsAnswerIdentically) {
  const size_t n = 300;
  const uint64_t seed = 7;
  Built basic = BuildWith(BuildMethod::kBasic, n, seed);
  Built icr = BuildWith(BuildMethod::kICR, n, seed);
  Built ic = BuildWith(BuildMethod::kIC, n, seed);
  Rng rng(3);
  for (int t = 0; t < 40; ++t) {
    const geom::Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    const auto a_basic = RetrievePnnAnswerIds(*basic.index, q).ValueOrDie();
    const auto a_icr = RetrievePnnAnswerIds(*icr.index, q).ValueOrDie();
    const auto a_ic = RetrievePnnAnswerIds(*ic.index, q).ValueOrDie();
    EXPECT_EQ(a_basic, a_icr) << "t=" << t;
    EXPECT_EQ(a_basic, a_ic) << "t=" << t;
  }
}

TEST(BuilderTest, IcFasterThanIcrFasterThanBasicOnLargerSets) {
  const size_t n = 1200;
  const uint64_t seed = 11;
  Built basic = BuildWith(BuildMethod::kBasic, n, seed);
  Built icr = BuildWith(BuildMethod::kICR, n, seed);
  Built ic = BuildWith(BuildMethod::kIC, n, seed);
  // Trends, not absolutes: Basic pays O(n) envelope work per object; ICR
  // pays pruning + refinement; IC pays pruning only.
  EXPECT_LT(ic.build_stats.total_seconds, icr.build_stats.total_seconds);
  EXPECT_LT(icr.build_stats.total_seconds, basic.build_stats.total_seconds * 2.0)
      << "ICR should not be drastically slower than Basic at this size";
  EXPECT_LT(ic.build_stats.total_seconds, basic.build_stats.total_seconds);
}

TEST(BuilderTest, BreakdownsPopulated) {
  Built ic = BuildWith(BuildMethod::kIC, 400, 13);
  EXPECT_GT(ic.build_stats.pruning_seconds, 0.0);
  EXPECT_GT(ic.build_stats.indexing_seconds, 0.0);
  EXPECT_EQ(ic.build_stats.avg_r_objects, 0.0);  // IC never refines
  EXPECT_GT(ic.build_stats.avg_cr_objects, 0.0);
  EXPECT_GT(ic.build_stats.i_pruning_ratio, 0.0);
  EXPECT_GE(ic.build_stats.c_pruning_ratio, ic.build_stats.i_pruning_ratio);

  Built icr = BuildWith(BuildMethod::kICR, 400, 13);
  EXPECT_GT(icr.build_stats.robject_seconds, 0.0);
  EXPECT_GT(icr.build_stats.avg_r_objects, 0.0);
  EXPECT_LE(icr.build_stats.avg_r_objects, icr.build_stats.avg_cr_objects);

  Built basic = BuildWith(BuildMethod::kBasic, 400, 13);
  EXPECT_GT(basic.build_stats.robject_seconds, 0.0);
  EXPECT_EQ(basic.build_stats.avg_cr_objects, 0.0);  // Basic never prunes
}

TEST(BuilderTest, RejectsMismatchedInput) {
  Built b = BuildWith(BuildMethod::kIC, 10, 17);
  UVIndex fresh(geom::Box({0, 0}, {10000, 10000}), b.pm.get(), {}, &b.stats);
  std::vector<uncertain::ObjectPtr> short_ptrs(b.ptrs.begin(), b.ptrs.end() - 1);
  EXPECT_FALSE(BuildUvIndex(b.objects, short_ptrs, *b.tree, b.index->domain(),
                            BuildMethod::kIC, {}, &fresh, nullptr, &b.stats)
                   .ok());
}

TEST(BuilderTest, IcrIndexesFewerConstraintsThanIc) {
  // ICR refines C_i down to F_i, so the average indexed set is smaller.
  Built icr = BuildWith(BuildMethod::kICR, 600, 19);
  Built ic = BuildWith(BuildMethod::kIC, 600, 19);
  EXPECT_LT(icr.build_stats.avg_r_objects, ic.build_stats.avg_cr_objects);
}

}  // namespace
}  // namespace core
}  // namespace uvd
