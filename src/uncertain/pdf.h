// Uncertainty pdfs. The paper's setup (Sec. VI-A) uses circular uncertainty
// regions with a Gaussian pdf whose mean is the circle center and whose
// standard deviation is one sixth of the region's diameter, represented as
// 20 histogram bars. We model this as a radial histogram: bar b holds the
// probability mass of the annulus [b*R/B, (b+1)*R/B), uniformly spread over
// the annulus area. Uniform pdfs are supported the same way.
#ifndef UVD_UNCERTAIN_PDF_H_
#define UVD_UNCERTAIN_PDF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geom/point.h"

namespace uvd {
namespace uncertain {

/// How the histogram bars were derived (kept for serialization).
enum class PdfKind : uint16_t {
  kGaussian = 0,
  kUniform = 1,
};

/// Number of histogram bars used throughout the paper's experiments.
constexpr int kDefaultNumBars = 20;

/// \brief Radial histogram pdf bounded in a circle of radius R.
class RadialHistogramPdf {
 public:
  /// Truncated isotropic Gaussian with sigma = diameter/6 (paper Sec. VI-A).
  /// Bar masses follow the Rayleigh radial CDF 1 - exp(-r^2 / (2 sigma^2)),
  /// renormalized to the circle.
  static RadialHistogramPdf Gaussian(double radius, int num_bars = kDefaultNumBars);

  /// Uniform distribution over the disk.
  static RadialHistogramPdf Uniform(double radius, int num_bars = kDefaultNumBars);

  /// Builds from explicit bar masses (must sum to ~1); used by storage.
  RadialHistogramPdf(PdfKind kind, double radius, std::vector<double> bars);

  PdfKind kind() const { return kind_; }
  double radius() const { return radius_; }
  int num_bars() const { return static_cast<int>(bars_.size()); }
  const std::vector<double>& bars() const { return bars_; }

  /// Inner and outer radius of bar b.
  double RingInner(int b) const { return radius_ * b / num_bars(); }
  double RingOuter(int b) const { return radius_ * (b + 1) / num_bars(); }

  /// CDF of the radial offset |X - center|, piecewise smooth per ring
  /// (mass spreads uniformly over each annulus area).
  double RadialCdf(double r) const;

  /// Samples a position offset from the region center.
  geom::Vec2 SampleOffset(Rng* rng) const;

 private:
  PdfKind kind_;
  double radius_;
  std::vector<double> bars_;  // masses, sum to 1 (up to roundoff)
};

}  // namespace uncertain
}  // namespace uvd

#endif  // UVD_UNCERTAIN_PDF_H_
