// Fig. 7(b): pruning ratio p_c of I-pruning and C-pruning vs |O|. Paper
// shape: both above ~85% and rising with |O| (90.9% / 95.5% at 40K);
// C-pruning is strictly stronger.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 7(b): pruning ratio p_c vs |O|",
                     "I-pruning vs C-pruning effectiveness");
  std::printf("%10s %16s %16s %12s\n", "|O|", "I-pruning pc(%)", "C-pruning pc(%)",
              "avg |C_i|");
  for (size_t n : bench::SizeSweep()) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = 42;
    Stats stats;
    auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                       datagen::DomainFor(opts), {}, &stats);
    const auto& bs = diagram.build_stats();
    std::printf("%10zu %16.2f %16.2f %12.1f\n", n, 100.0 * bs.i_pruning_ratio,
                100.0 * bs.c_pruning_ratio, bs.avg_cr_objects);
  }
  return 0;
}
