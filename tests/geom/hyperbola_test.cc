// Tests for the paper's Eq. 5 hyperbola: focal property, rotation, and
// consistency between the conic form and plain distance dominance tests.
#include "geom/hyperbola.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace uvd {
namespace geom {
namespace {

Circle Oi() { return Circle({0, 0}, 1.0); }
Circle Oj() { return Circle({10, 0}, 2.0); }

TEST(HyperbolaTest, CoefficientsMatchEq5) {
  auto h = Hyperbola::FromObjects(Oi(), Oj());
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h.value().a(), 1.5);             // (r_i + r_j) / 2
  EXPECT_DOUBLE_EQ(h.value().c(), 5.0);             // dist / 2
  EXPECT_DOUBLE_EQ(h.value().b(), std::sqrt(25.0 - 2.25));
  EXPECT_EQ(h.value().focal_center(), (Point{5, 0}));
  EXPECT_DOUBLE_EQ(h.value().theta(), 0.0);
}

TEST(HyperbolaTest, OverlappingObjectsRejected) {
  auto h = Hyperbola::FromObjects(Circle({0, 0}, 2), Circle({3, 0}, 2));
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kInvalidArgument);
}

TEST(HyperbolaTest, TangentObjectsRejected) {
  auto h = Hyperbola::FromObjects(Circle({0, 0}, 2), Circle({4, 0}, 2));
  EXPECT_FALSE(h.ok());
}

TEST(HyperbolaTest, PointObjectsDegenerateToLine) {
  auto h = Hyperbola::FromObjects(Circle({0, 0}, 0), Circle({4, 0}, 0));
  EXPECT_FALSE(h.ok());  // perpendicular bisector is not a hyperbola
}

TEST(HyperbolaTest, BranchPointsSatisfyFocalProperty) {
  auto h = Hyperbola::FromObjects(Oi(), Oj()).ValueOrDie();
  // Every point on the UV-edge satisfies dist(p,c_i) - dist(p,c_j) = r_i+r_j.
  for (double t = -2.0; t <= 2.0; t += 0.25) {
    const Point p = h.PointAt(t);
    const double lhs = Distance(p, Oi().center) - Distance(p, Oj().center);
    EXPECT_NEAR(lhs, Oi().radius + Oj().radius, 1e-9) << "t=" << t;
    EXPECT_NEAR(h.ImplicitValue(p), 0.0, 1e-9);
  }
}

TEST(HyperbolaTest, RotatedFocalProperty) {
  const Circle oi({3, 4}, 0.5);
  const Circle oj({-2, 9}, 1.0);
  auto h = Hyperbola::FromObjects(oi, oj).ValueOrDie();
  for (double t = -1.5; t <= 1.5; t += 0.3) {
    const Point p = h.PointAt(t);
    EXPECT_NEAR(Distance(p, oi.center) - Distance(p, oj.center),
                oi.radius + oj.radius, 1e-9);
  }
  // Rotation angle points from c_i to c_j.
  EXPECT_NEAR(h.theta(), std::atan2(5.0, -5.0), 1e-12);
}

TEST(HyperbolaTest, OutsideRegionMatchesDistanceDominance) {
  const Circle oi({2, -1}, 0.8);
  const Circle oj({9, 5}, 1.2);
  auto h = Hyperbola::FromObjects(oi, oj).ValueOrDie();
  Rng rng(99);
  int outside_count = 0;
  for (int i = 0; i < 5000; ++i) {
    const Point p{rng.Uniform(-20, 30), rng.Uniform(-25, 25)};
    // X_i(j): O_j always closer, i.e. dist_max(O_j,p) < dist_min(O_i,p).
    const bool dominated = oj.DistMax(p) < oi.DistMin(p);
    EXPECT_EQ(h.InOutsideRegion(p), dominated)
        << "p=(" << p.x << "," << p.y << ")";
    outside_count += dominated ? 1 : 0;
  }
  EXPECT_GT(outside_count, 0);          // the region is non-trivial
  EXPECT_LT(outside_count, 5000);       // and not everything
}

TEST(HyperbolaTest, OutsideRegionIsConvex) {
  // Paper Sec. III-B: the outside region of a UV-edge is convex. Check with
  // random segment midpoints.
  const Circle oi({0, 0}, 1), oj({8, 2}, 1.5);
  auto h = Hyperbola::FromObjects(oi, oj).ValueOrDie();
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const Point p{rng.Uniform(-10, 25), rng.Uniform(-15, 20)};
    const Point q{rng.Uniform(-10, 25), rng.Uniform(-15, 20)};
    if (h.InOutsideRegion(p) && h.InOutsideRegion(q)) {
      const Point mid = (p + q) * 0.5;
      EXPECT_TRUE(h.InOutsideRegion(mid) || oj.DistMax(mid) <= oi.DistMin(mid));
    }
  }
}

TEST(HyperbolaTest, FociAccessors) {
  auto h = Hyperbola::FromObjects(Oi(), Oj()).ValueOrDie();
  EXPECT_EQ(h.focus_i(), Oi().center);
  EXPECT_EQ(h.focus_j(), Oj().center);
}

TEST(HyperbolaTest, SampleProducesRequestedPoints) {
  auto h = Hyperbola::FromObjects(Oi(), Oj()).ValueOrDie();
  const auto pts = h.Sample(21, 2.0);
  EXPECT_EQ(pts.size(), 21u);
  // Symmetric parameter range: first and last mirror across the focal axis.
  EXPECT_NEAR(pts.front().y, -pts.back().y, 1e-9);
  EXPECT_NEAR(pts.front().x, pts.back().x, 1e-9);
}

TEST(HyperbolaTest, EdgeSeparatesQueryExamples) {
  // Fig. 3 of the paper: q0 beyond the edge (closer to O_j) is pruned for
  // O_i; q1 before the edge keeps O_i as possible NN.
  const Circle oi({0, 0}, 1), oj({10, 0}, 1);
  auto h = Hyperbola::FromObjects(oi, oj).ValueOrDie();
  const Point q0{9, 0};   // very close to O_j
  const Point q1{2, 0};   // close to O_i
  EXPECT_TRUE(h.InOutsideRegion(q0));
  EXPECT_FALSE(h.InOutsideRegion(q1));
}

}  // namespace
}  // namespace geom
}  // namespace uvd
