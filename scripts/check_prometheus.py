#!/usr/bin/env python3
"""Prometheus text-exposition format checker for the CI obs step.

Validates the output of ``MetricsRegistry::Snapshot::ToPrometheus()``
(stdlib only — CI never installs a Prometheus client):

  * every non-comment line is ``name value`` or ``name{label="v",...} value``
    with a metric name matching ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and a value
    that parses as a finite float (or +Inf/-Inf/NaN, which the format
    allows);
  * every ``# TYPE`` line names a known type (counter/gauge/summary/
    histogram/untyped) and appears before any sample of that metric, at
    most once per metric;
  * every sample belongs to a declared metric family — for summaries the
    base name, ``_sum`` and ``_count`` all attach to the base ``# TYPE``;
  * within a family, samples are contiguous (Prometheus rejects
    interleaved families);
  * summary quantile labels parse as floats in [0, 1].

Usage: check_prometheus.py FILE.prom [FILE.prom ...]
Exits non-zero listing every violation.
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: \d+)?$"  # optional timestamp
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
KNOWN_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
SPECIAL_VALUES = {"+Inf", "-Inf", "NaN"}


def family_of(name: str, declared: dict) -> str | None:
    """Maps a sample name to its declared family (handles summary/histogram
    suffixes like _sum, _count, _bucket)."""
    if name in declared:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        base = name.removesuffix(suffix)
        if base != name and declared.get(base) in ("summary", "histogram"):
            return base
    return None


def check_file(path: str) -> list:
    errors = []
    declared = {}  # family name -> type
    sampled = set()  # families that have emitted at least one sample
    current_family = None
    closed_families = set()

    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"{path}: cannot read: {e}"]

    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line:
            errors.append(f"{where}: blank line (exposition forbids them)")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"{where}: malformed TYPE line: {line!r}")
                    continue
                _, _, name, mtype = parts
                if not NAME_RE.fullmatch(name):
                    errors.append(f"{where}: bad metric name {name!r}")
                if mtype not in KNOWN_TYPES:
                    errors.append(f"{where}: unknown metric type {mtype!r}")
                if name in declared:
                    errors.append(f"{where}: duplicate TYPE for {name!r}")
                if name in sampled:
                    errors.append(
                        f"{where}: TYPE for {name!r} after its samples"
                    )
                declared[name] = mtype
            # Other comments (# HELP, free-form) are always legal.
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        name, labels, value = m.group("name"), m.group("labels"), m.group("value")

        if value not in SPECIAL_VALUES:
            try:
                float(value)
            except ValueError:
                errors.append(f"{where}: non-numeric value {value!r}")

        family = family_of(name, declared)
        if family is None:
            errors.append(f"{where}: sample {name!r} has no # TYPE declaration")
            family = name  # still track contiguity under its own name
        sampled.add(family)

        if family != current_family:
            if family in closed_families:
                errors.append(
                    f"{where}: family {family!r} interleaved with others"
                )
            if current_family is not None:
                closed_families.add(current_family)
            current_family = family

        if labels is not None:
            for pair in labels.split(","):
                if not LABEL_RE.fullmatch(pair):
                    errors.append(f"{where}: malformed label {pair!r}")
                elif pair.startswith('quantile="'):
                    q = pair[len('quantile="'):-1]
                    try:
                        if not 0.0 <= float(q) <= 1.0:
                            errors.append(
                                f"{where}: quantile {q!r} outside [0, 1]"
                            )
                    except ValueError:
                        errors.append(f"{where}: non-numeric quantile {q!r}")

    for name in declared:
        if name not in sampled:
            errors.append(f"{path}: # TYPE {name} declared but never sampled")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for err in all_errors:
        print(err, file=sys.stderr)
    if not all_errors:
        print(f"OK: {len(argv) - 1} file(s) pass the exposition-format check")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
