// Shared on-disk codec for leaf tuples <ID, MBC, ptr>. Both the R-tree and
// the UV-index store exactly this layout in their leaf pages (paper
// Sec. V-A), so they share one codec.
#ifndef UVD_RTREE_LEAF_CODEC_H_
#define UVD_RTREE_LEAF_CODEC_H_

#include <cstdint>
#include <vector>

#include "geom/circle.h"
#include "storage/record.h"
#include "uncertain/object_store.h"

namespace uvd {
namespace rtree {

/// Leaf tuple <ID, MBC, ptr> (paper Sec. V-A).
struct LeafEntry {
  int32_t id = -1;
  geom::Circle mbc;
  uncertain::ObjectPtr ptr = 0;
};

/// Serialized size of one tuple: id(i32) cx(f64) cy(f64) r(f64) ptr(u64).
constexpr size_t kLeafEntryBytes = 4 + 8 + 8 + 8 + 8;

/// Serializes a page: u16 count then the tuples.
inline void EncodeLeafEntries(const LeafEntry* entries, size_t count,
                              std::vector<uint8_t>* buf) {
  storage::Encoder enc(buf);
  enc.PutU16(static_cast<uint16_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const LeafEntry& e = entries[i];
    enc.PutI32(e.id);
    enc.PutDouble(e.mbc.center.x);
    enc.PutDouble(e.mbc.center.y);
    enc.PutDouble(e.mbc.radius);
    enc.PutU64(e.ptr);
  }
}

/// Appends the page's tuples to *out.
inline void DecodeLeafEntries(const std::vector<uint8_t>& buf,
                              std::vector<LeafEntry>* out) {
  storage::Decoder dec(buf);
  const uint16_t n = dec.GetU16();
  out->reserve(out->size() + n);
  for (uint16_t i = 0; i < n; ++i) {
    LeafEntry e;
    e.id = dec.GetI32();
    e.mbc.center.x = dec.GetDouble();
    e.mbc.center.y = dec.GetDouble();
    e.mbc.radius = dec.GetDouble();
    e.ptr = dec.GetU64();
    out->push_back(e);
  }
}

}  // namespace rtree
}  // namespace uvd

#endif  // UVD_RTREE_LEAF_CODEC_H_
