#include "core/cr_finder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "geom/convex_hull.h"

namespace uvd {
namespace core {

namespace {

// Leaf-decode wall accumulated through a workspace so far, whichever
// traversal owns the buffers (oracle scratch or shared session).
double DecodeSeconds(const CrFinderWorkspace& ws) {
  return ws.scratch.decode_seconds +
         (ws.session != nullptr ? ws.session->decode_seconds() : 0.0);
}

}  // namespace

CrObjectFinder::CrObjectFinder(const std::vector<uncertain::UncertainObject>& objects,
                               const rtree::RTree& tree, const geom::Box& domain,
                               const CrFinderOptions& options, Stats* stats)
    : objects_(objects), tree_(tree), domain_(domain), options_(options), stats_(stats) {
  UVD_CHECK_GT(options_.num_sectors, 0);
  UVD_CHECK_GT(options_.knn_k, 0);
}

std::vector<int> CrObjectFinder::SelectSeeds(
    size_t index, const std::vector<rtree::LeafEntry>& knn) const {
  const uncertain::UncertainObject& anchor = objects_[index];
  // Divide the domain into k_s sectors centered at c_i and keep the object
  // closest to c_i per sector (paper Sec. IV-B). The k-NN result arrives in
  // ascending dist_min order, so the first hit per sector wins.
  const double sector_width = 2.0 * M_PI / options_.num_sectors;
  std::vector<int> seed_per_sector(static_cast<size_t>(options_.num_sectors), -1);
  int found = 0;
  for (const rtree::LeafEntry& e : knn) {
    if (e.id == anchor.id()) continue;
    const geom::Vec2 d = e.mbc.center - anchor.center();
    if (d.Norm2() == 0.0) continue;  // co-centered: no direction, skip
    // An overlapping neighbor has an empty outside region (Sec. III-C) and
    // cannot shrink P_i, so it is useless as a seed; take the nearest
    // object per sector that actually contributes a UV-edge.
    const double dist = d.Norm();
    if (dist <= anchor.radius() + e.mbc.radius) continue;
    const int sector =
        std::min(options_.num_sectors - 1,
                 static_cast<int>(geom::NormalizeAngle(d.Angle()) / sector_width));
    if (seed_per_sector[static_cast<size_t>(sector)] < 0) {
      seed_per_sector[static_cast<size_t>(sector)] = e.id;
      if (++found == options_.num_sectors) break;
    }
  }
  std::vector<int> seeds;
  seeds.reserve(static_cast<size_t>(found));
  for (int id : seed_per_sector) {
    if (id >= 0) seeds.push_back(id);
  }
  return seeds;
}

UVCell CrObjectFinder::BuildSeedRegion(size_t index, std::vector<int>* seed_ids,
                                       CrFinderWorkspace* ws) const {
  CrFinderWorkspace local;
  if (ws == nullptr) ws = &local;
  const uncertain::UncertainObject& anchor = objects_[index];
  // k-NN by dist_min around c_i; +1 because the anchor itself is returned.
  // The session (shared frontier) and the fresh traversal return the same
  // bytes — the canonical (dist_min, id) order, see rtree::KnnHeapItem.
  std::vector<rtree::LeafEntry>& knn = ws->knn;
  {
    ScopedTimer t(&ws->traversal_seconds);
    if (ws->session != nullptr) {
      ws->session->KNearest(anchor.center(), options_.knn_k + 1, &knn);
    } else {
      tree_.KNearestByDistMin(anchor.center(), options_.knn_k + 1,
                              &ws->scratch, &knn);
    }
  }
  const std::vector<int> seeds = SelectSeeds(index, knn);
  UVCell region(anchor.region(), anchor.id(), domain_, stats_);
  for (int id : seeds) {
    region.SubtractOutsideRegion(objects_[static_cast<size_t>(id)].region(), id);
  }
  // Adaptive widening: if the seed region reaches beyond the k-NN ball the
  // eight seeds under-constrain it (dense data makes near seeds' edges
  // angularly narrow). The pool is already in memory, so refine with all of
  // it — every inserted constraint is a genuine outside region, keeping
  // P_i a superset of U_i (Lemma 2/3 stay applicable).
  double knn_radius = 0.0;
  for (const rtree::LeafEntry& e : knn) {
    knn_radius = std::max(knn_radius, e.mbc.DistMin(anchor.center()));
  }
  if (options_.adaptive_seed_widening &&
      region.MaxDistanceFromCenter() > knn_radius) {
    ScopedTimer kernel_timer(&ws->kernel_seconds);
    if (options_.kernel_mode == geom::KernelMode::kBatch) {
      std::vector<geom::Circle> regions;
      std::vector<int> ids;
      regions.reserve(knn.size());
      ids.reserve(knn.size());
      for (const rtree::LeafEntry& e : knn) {
        if (e.id == anchor.id()) continue;
        regions.push_back(e.mbc);
        ids.push_back(e.id);
      }
      region.SubtractOutsideRegions(regions.data(), ids.data(), regions.size());
    } else {
      for (const rtree::LeafEntry& e : knn) {
        if (e.id == anchor.id()) continue;
        region.SubtractOutsideRegion(e.mbc, e.id);
      }
    }
  }
  if (seed_ids != nullptr) *seed_ids = seeds;
  return region;
}

CrResult CrObjectFinder::Find(size_t index, CrFinderWorkspace* ws) const {
  UVD_CHECK_LT(index, objects_.size());
  CrFinderWorkspace local;
  if (ws == nullptr) ws = &local;
  const uncertain::UncertainObject& anchor = objects_[index];
  CrResult result;
  result.considered = objects_.size() - 1;
  const double traversal0 = ws->traversal_seconds;
  const double decode0 = DecodeSeconds(*ws);
  const double kernel0 = ws->kernel_seconds;

  // Step 1: seeds and initial possible region.
  UVCell region = [&] {
    ScopedTimer t(&result.seed_seconds);
    return BuildSeedRegion(index, &result.seeds, ws);
  }();

  ScopedTimer prune_timer(&result.prune_seconds);

  // Step 2: I-pruning (Lemma 2). Only objects whose centers lie within
  // Cir(c_i, 2d - r_i) can reshape P_i.
  const double d = region.MaxDistanceFromCenter();
  result.max_dist = d;
  const double range = 2.0 * d - anchor.radius();
  // The session returns the same candidate SET as the fresh traversal,
  // possibly in a different order — unobservable here: every keep decision
  // below is per-candidate and cr_objects is sorted before returning.
  std::vector<rtree::LeafEntry>& candidates = ws->candidates;
  {
    ScopedTimer t(&ws->traversal_seconds);
    if (ws->session != nullptr) {
      ws->session->CentersInRange(anchor.center(), range, &candidates);
    } else {
      tree_.CentersInRange(anchor.center(), range, &ws->scratch, &candidates);
    }
  }
  // Drop the anchor itself.
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](const rtree::LeafEntry& e) {
                                    return e.id == anchor.id();
                                  }),
                   candidates.end());
  result.after_i_pruning = candidates.size();

  // Step 3: C-pruning (Lemma 3). d-bounds at the convex hull vertices of
  // P_i: O_j survives iff c_j is inside some Cir(v_m, dist(v_m, c_i)).
  // Squared distances on both sides — same decision, no per-candidate sqrt.
  const std::vector<geom::Point> hull = geom::ConvexHull(region.Vertices());
  std::vector<double> hull_dist2;
  hull_dist2.reserve(hull.size());
  for (const geom::Point& v : hull) {
    hull_dist2.push_back(geom::DistanceSquared(v, anchor.center()));
  }

  result.cr_objects.reserve(candidates.size());
  {
    ScopedTimer kernel_timer(&ws->kernel_seconds);
    if (options_.kernel_mode == geom::KernelMode::kBatch && !hull.empty()) {
      std::vector<double> xs, ys;
      xs.reserve(candidates.size());
      ys.reserve(candidates.size());
      for (const rtree::LeafEntry& e : candidates) {
        xs.push_back(e.mbc.center.x);
        ys.push_back(e.mbc.center.y);
      }
      std::vector<uint8_t> keep(candidates.size());
      geom::batch::AnyHullCircleContains(xs.data(), ys.data(), xs.size(),
                                         hull.data(), hull_dist2.data(),
                                         hull.size(), keep.data());
      for (size_t k = 0; k < candidates.size(); ++k) {
        if (keep[k]) result.cr_objects.push_back(candidates[k].id);
      }
    } else {
      for (const rtree::LeafEntry& e : candidates) {
        bool keep = hull.empty();  // degenerate region: keep everything
        for (size_t m = 0; m < hull.size(); ++m) {
          if (geom::DistanceSquared(e.mbc.center, hull[m]) <= hull_dist2[m]) {
            keep = true;
            break;
          }
        }
        if (keep) result.cr_objects.push_back(e.id);
      }
    }
  }
  std::sort(result.cr_objects.begin(), result.cr_objects.end());
  result.traversal_seconds = ws->traversal_seconds - traversal0;
  result.decode_seconds = DecodeSeconds(*ws) - decode0;
  result.kernel_seconds = ws->kernel_seconds - kernel0;
  return result;
}

}  // namespace core
}  // namespace uvd
