// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: reads and
// writes a UVD_GUARDED_BY field without holding its mutex. The ctest
// thread_annotations_guarded_by_violation_must_not_compile asserts the
// build of this file fails (WILL_FAIL).
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  // VIOLATION: value_ is guarded by mu_, which is never acquired here.
  void Increment() { ++value_; }

 private:
  uvd::Mutex mu_;
  int value_ UVD_GUARDED_BY(mu_) = 0;
};

}  // namespace

void TaGuardedByViolationDriver() {
  Counter c;
  c.Increment();
}
