// Fixed-size worker pool shared by the parallel build pipeline and (by
// design) every later concurrency feature: batched query execution,
// sharded serving, background rebuilds. Deliberately minimal — Submit +
// Wait over a FIFO task queue — so callers own their scheduling policy
// (the build pipeline, for instance, submits one long-running loop per
// worker and sequences results itself to stay deterministic).
//
// Lock discipline is compile-time checked: every guarded field carries
// UVD_GUARDED_BY and the waits are explicit predicate loops over CondVar
// (see common/thread_annotations.h and docs/STATIC_ANALYSIS.md).
#ifndef UVD_COMMON_THREAD_POOL_H_
#define UVD_COMMON_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace uvd {

/// \brief FIFO task pool with a fixed number of worker threads.
///
/// Tasks must not throw (the library is exception-free); a task that needs
/// to report failure should capture a Status slot. Destruction waits for
/// every submitted task to finish.
class ThreadPool {
 public:
  /// std::thread::hardware_concurrency with a sane fallback.
  static int DefaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  /// Spawns max(1, num_threads) workers; num_threads <= 0 means
  /// DefaultThreads().
  explicit ThreadPool(int num_threads = 0) {
    if (num_threads <= 0) num_threads = DefaultThreads();
    threads_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_task_.NotifyAll();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after destruction has begun.
  void Submit(std::function<void()> task) UVD_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      UVD_CHECK(!shutdown_) << "Submit on a shut-down ThreadPool";
      queue_.push(std::move(task));
      ++pending_;
    }
    cv_task_.NotifyOne();
  }

  /// Blocks until every task submitted so far has finished. The pool is
  /// reusable afterwards.
  void Wait() UVD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (pending_ != 0) cv_idle_.Wait(mu_);
  }

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Tasks submitted but not yet picked up by a worker — the obs layer's
  /// queue-depth gauge. A momentary value, not a synchronization point.
  size_t QueueDepth() const UVD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return queue_.size();
  }

 private:
  void WorkerLoop() UVD_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!shutdown_ && queue_.empty()) cv_task_.Wait(mu_);
        if (queue_.empty()) return;  // shutdown and drained
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
      {
        MutexLock lock(mu_);
        if (--pending_ == 0) cv_idle_.NotifyAll();
      }
    }
  }

  mutable Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::queue<std::function<void()>> queue_ UVD_GUARDED_BY(mu_);
  size_t pending_ UVD_GUARDED_BY(mu_) = 0;  // submitted but not yet finished
  bool shutdown_ UVD_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

/// \brief Counted completion tracker for fanning ONE call's tasks over a
/// shared pool.
///
/// ThreadPool::Wait blocks until the pool is globally idle, which couples
/// concurrent callers: a small batch waits for every overlapping batch to
/// drain. A WaitGroup instead counts exactly the caller's own tasks.
/// Allocate it in a shared_ptr captured by value in every task (a
/// straggler's Done() may run after Wait() has already returned on another
/// task's notification; shared ownership keeps the tracker alive for it).
class WaitGroup {
 public:
  explicit WaitGroup(int count) : remaining_(count) {}

  /// Marks one task complete. Call exactly once per counted task.
  void Done() UVD_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      --remaining_;
    }
    cv_.NotifyOne();
  }

  /// Blocks until every counted task called Done().
  void Wait() UVD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (remaining_ > 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int remaining_ UVD_GUARDED_BY(mu_);
};

}  // namespace uvd

#endif  // UVD_COMMON_THREAD_POOL_H_
