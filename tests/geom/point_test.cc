// Tests for Vec2 / Point arithmetic and angle helpers.
#include "geom/point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uvd {
namespace geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1}));
  EXPECT_EQ(-a, (Vec2{-1, -2}));
}

TEST(Vec2Test, CompoundAssignment) {
  Vec2 v{1, 1};
  v += {2, 3};
  EXPECT_EQ(v, (Vec2{3, 4}));
  v -= {1, 1};
  EXPECT_EQ(v, (Vec2{2, 3}));
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a{1, 2}, b{3, 4};
  EXPECT_DOUBLE_EQ(a.Dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -2.0);
  EXPECT_DOUBLE_EQ(a.Cross(a), 0.0);
}

TEST(Vec2Test, NormAndNormalized) {
  const Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.Norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  const Vec2 u = v.Normalized();
  EXPECT_NEAR(u.Norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec2Test, PerpIsCcwRotation) {
  const Vec2 v{1, 0};
  EXPECT_EQ(v.Perp(), (Vec2{0, 1}));
  EXPECT_DOUBLE_EQ(v.Dot(v.Perp()), 0.0);
  EXPECT_GT(v.Cross(v.Perp()), 0.0);  // counter-clockwise
}

TEST(Vec2Test, AngleMatchesAtan2) {
  EXPECT_DOUBLE_EQ((Vec2{1, 0}).Angle(), 0.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 1}).Angle(), M_PI / 2);
  EXPECT_DOUBLE_EQ((Vec2{-1, 0}).Angle(), M_PI);
}

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({1, 1}, {2, 2}), 2.0);
}

TEST(PointTest, UnitVector) {
  const Vec2 u = UnitVector(M_PI / 3);
  EXPECT_NEAR(u.x, 0.5, 1e-15);
  EXPECT_NEAR(u.y, std::sqrt(3.0) / 2.0, 1e-15);
  EXPECT_NEAR(u.Norm(), 1.0, 1e-15);
}

TEST(PointTest, NormalizeAngle) {
  EXPECT_DOUBLE_EQ(NormalizeAngle(0.0), 0.0);
  EXPECT_NEAR(NormalizeAngle(-M_PI / 2), 3 * M_PI / 2, 1e-12);
  EXPECT_NEAR(NormalizeAngle(5 * M_PI), M_PI, 1e-12);
  EXPECT_DOUBLE_EQ(NormalizeAngle(2 * M_PI), 0.0);
  // Always lands in [0, 2*pi).
  for (double t = -20.0; t < 20.0; t += 0.37) {
    const double n = NormalizeAngle(t);
    EXPECT_GE(n, 0.0);
    EXPECT_LT(n, 2 * M_PI);
  }
}

}  // namespace
}  // namespace geom
}  // namespace uvd
