#include "query/query_engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "core/pattern_queries.h"
#include "core/pnn.h"

namespace uvd {
namespace query {

QueryEngine::QueryEngine(const core::UVDiagram& diagram,
                         const QueryEngineOptions& options)
    : diagram_(diagram), options_(options) {
  threads_ = options.threads > 0 ? options.threads : ThreadPool::DefaultThreads();
  if (options_.enable_cache) {
    cache_ = std::make_unique<QueryCache>(options_.cache);
  }
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
}

void QueryEngine::InvalidateCache() {
  if (cache_ != nullptr) cache_->Clear();
}

Result<std::vector<rtree::LeafEntry>> QueryEngine::CandidatesFor(
    const geom::Point& p, Stats* shard) const {
  const core::UVIndex& index = diagram_.index();
  UVD_ASSIGN_OR_RETURN(const uint32_t leaf, index.LocateLeafChecked(p));
  if (cache_ != nullptr) {
    return cache_->GetOrLoad(
        leaf, [&index, leaf] { return index.ReadLeafEntries(leaf); }, shard);
  }
  return index.ReadLeafEntries(leaf);
}

QueryResult QueryEngine::ExecuteOne(const Query& q, Stats* shard) const {
  QueryResult result;
  switch (q.kind) {
    case QueryKind::kPnn: {
      auto candidates = CandidatesFor(q.point, shard);
      if (!candidates.ok()) {
        result.status = candidates.status();
        break;
      }
      auto answers = core::EvaluatePnnFromCandidates(
          std::move(candidates).value(), diagram_.store(), q.point,
          diagram_.options().qualification, shard);
      if (!answers.ok()) {
        result.status = answers.status();
        break;
      }
      result.pnn = std::move(answers).value();
      break;
    }
    case QueryKind::kAnswerIds: {
      auto candidates = CandidatesFor(q.point, shard);
      if (!candidates.ok()) {
        result.status = candidates.status();
        break;
      }
      result.answer_ids =
          core::AnswerIdsFromCandidates(std::move(candidates).value(), q.point);
      break;
    }
    case QueryKind::kUvPartitions: {
      result.partitions = core::RetrieveUvPartitions(diagram_.index(), q.range, shard);
      break;
    }
    case QueryKind::kCellSummary: {
      auto summary = core::RetrieveUvCellSummary(diagram_.index(), q.object_id,
                                                 /*use_offline_lists=*/true, shard);
      if (!summary.ok()) {
        result.status = summary.status();
        break;
      }
      result.cell_summary = summary.value();
      break;
    }
  }
  return result;
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(const QueryBatch& batch) {
  std::vector<QueryResult> results(batch.size());
  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(threads_), batch.size()));

  if (pool_ == nullptr || workers <= 1) {
    worker_stats_.assign(1, Stats());
    Stats* shard = &worker_stats_[0];
    for (size_t i = 0; i < batch.size(); ++i) {
      results[i] = ExecuteOne(batch[i], shard);
    }
    diagram_.stats().MergeFrom(worker_stats_[0]);
    return results;
  }

  // Fan-out: workers claim slots through the cursor; results are written
  // positionally, so submission order is preserved for free.
  worker_stats_.assign(static_cast<size_t>(workers), Stats());
  std::atomic<size_t> next{0};
  for (int w = 0; w < workers; ++w) {
    Stats* shard = &worker_stats_[static_cast<size_t>(w)];
    pool_->Submit([this, &batch, &results, &next, shard] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.size()) return;
        results[i] = ExecuteOne(batch[i], shard);
      }
    });
  }
  pool_->Wait();

  for (const Stats& shard : worker_stats_) diagram_.stats().MergeFrom(shard);
  return results;
}

}  // namespace query
}  // namespace uvd
