#include "geom/batch/hyperbola_batch.h"

namespace uvd {
namespace geom {
namespace batch {

void HyperbolaBatch::Clear() {
  fcx_.clear();
  fcy_.clear();
  cos_t_.clear();
  sin_t_.clear();
  a2_.clear();
  b2_.clear();
}

void HyperbolaBatch::Reserve(size_t n) {
  fcx_.reserve(n);
  fcy_.reserve(n);
  cos_t_.reserve(n);
  sin_t_.reserve(n);
  a2_.reserve(n);
  b2_.reserve(n);
}

size_t HyperbolaBatch::Add(const Hyperbola& h) {
  fcx_.push_back(h.focal_center().x);
  fcy_.push_back(h.focal_center().y);
  cos_t_.push_back(h.cos_theta());
  sin_t_.push_back(h.sin_theta());
  a2_.push_back(h.a() * h.a());
  b2_.push_back(h.b() * h.b());
  return fcx_.size() - 1;
}

namespace {

// One lane of Hyperbola::InOutsideRegion: focal-frame transform followed by
// the implicit-value sign test, same operations in the same order.
inline uint8_t InOutsideLane(double px, double py, double fcx, double fcy,
                             double cos_t, double sin_t, double a2,
                             double b2) {
  const double dx = px - fcx;
  const double dy = py - fcy;
  const double fx = dx * cos_t + dy * sin_t;
  const double fy = -dx * sin_t + dy * cos_t;
  const double implicit = (fx * fx) / a2 - (fy * fy) / b2 - 1.0;
  return static_cast<uint8_t>(fx > 0.0 && implicit > 0.0 ? 1 : 0);
}

}  // namespace

void HyperbolaBatch::InOutsideRegionAll(const Point& p, uint8_t* mask) const {
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    mask[i] = InOutsideLane(p.x, p.y, fcx_[i], fcy_[i], cos_t_[i], sin_t_[i],
                            a2_[i], b2_[i]);
  }
}

void HyperbolaBatch::InOutsideRegionMany(size_t lane, const double* xs,
                                         const double* ys, size_t n,
                                         uint8_t* out_mask) const {
  const double fcx = fcx_[lane];
  const double fcy = fcy_[lane];
  const double cos_t = cos_t_[lane];
  const double sin_t = sin_t_[lane];
  const double a2 = a2_[lane];
  const double b2 = b2_[lane];
  for (size_t k = 0; k < n; ++k) {
    out_mask[k] = InOutsideLane(xs[k], ys[k], fcx, fcy, cos_t, sin_t, a2, b2);
  }
}

}  // namespace batch
}  // namespace geom
}  // namespace uvd
