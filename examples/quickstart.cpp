// Quickstart: build a UV-diagram over a handful of uncertain objects and
// run a probabilistic nearest-neighbor (PNN) query.
//
//   $ ./quickstart
//
// Walks through the three core calls: dataset construction,
// UVDiagram::Build, and QueryPnn.
#include <cstdio>

#include "core/uv_diagram.h"
#include "datagen/generators.h"

int main() {
  using namespace uvd;

  // A 1000 x 1000 domain with eight uncertain objects: each has a circular
  // uncertainty region and a Gaussian pdf bounded inside it.
  const geom::Box domain({0, 0}, {1000, 1000});
  std::vector<uncertain::UncertainObject> objects;
  const geom::Point centers[] = {{150, 200}, {420, 260}, {700, 150}, {820, 540},
                                 {600, 620}, {320, 700}, {150, 520}, {480, 450}};
  for (int i = 0; i < 8; ++i) {
    objects.push_back(
        uncertain::UncertainObject::WithGaussianPdf(i, {centers[i], 45.0}));
  }

  // Build: object store + R-tree + UV-index (IC construction by default).
  auto diagram = core::UVDiagram::Build(std::move(objects), domain).ValueOrDie();
  std::printf("built UV-index: %zu leaves, %d non-leaf nodes, height %d\n",
              diagram.index().num_leaves(), diagram.index().num_nonleaf(),
              diagram.index().height());

  // PNN query: which objects can be the nearest neighbor of q, and with
  // what probability?
  const geom::Point q{500, 400};
  std::printf("\nPNN at (%.0f, %.0f):\n", q.x, q.y);
  for (const auto& answer : diagram.QueryPnn(q).ValueOrDie()) {
    std::printf("  object %d  probability %.4f\n", answer.id, answer.probability);
  }

  // The same query through the R-tree baseline gives identical answers;
  // the UV-index just finds them with fewer page reads.
  diagram.stats().Reset();
  UVD_CHECK(diagram.QueryPnn(q).ok());
  const uint64_t uv_io = diagram.stats().Get(Ticker::kUvIndexLeafReads);
  diagram.stats().Reset();
  UVD_CHECK(diagram.QueryPnnWithRtree(q).ok());
  const uint64_t rtree_io = diagram.stats().Get(Ticker::kRtreeLeafReads);
  std::printf("\nindex leaf I/O for this query: UV-index %llu vs R-tree %llu\n",
              static_cast<unsigned long long>(uv_io),
              static_cast<unsigned long long>(rtree_io));

  // Pattern analysis: the approximate extent of object 7's UV-cell.
  const auto summary = diagram.QueryUvCellSummary(7);
  if (summary.ok()) {
    std::printf("\nUV-cell of object 7: ~%.0f area units across %zu leaves\n",
                summary.value().area, summary.value().num_leaves);
  }
  return 0;
}
