// Fig. 6(d): T_q vs uncertainty-region size (diameter 20..100). Paper
// shape: both indexes slow down as regions grow (more answer objects per
// query); the UV-diagram stays ahead.
#include "bench_common.h"

int main() {
  using namespace uvd;
  bench::PrintBanner("Fig. 6(d): T_q vs uncertainty-region size",
                     "diameter sweep 20..100, |O|=30K scaled");
  std::printf("%10s %14s %14s %14s\n", "diameter", "UV-diagram(ms)", "R-tree(ms)",
              "avg answers");
  for (double diameter : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    datagen::DatasetOptions opts;
    opts.count = bench::ScaledCount(30000);
    opts.diameter = diameter;
    opts.seed = 42;
    Stats stats;
    auto diagram = bench::BuildDiagram(datagen::GenerateUniform(opts),
                                       datagen::DomainFor(opts), {}, &stats);
    const auto queries =
        datagen::UniformQueryPoints(bench::kNumQueries, diagram.domain(), 7);
    const auto r = bench::MeasurePnn(diagram, queries);
    std::printf("%10.0f %14.3f %14.3f %14.2f\n", diameter, r.uv_ms, r.rtree_ms,
                r.avg_answers);
  }
  return 0;
}
