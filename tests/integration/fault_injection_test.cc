// Failure-injection tests: every disk-touching path must propagate I/O
// errors as Status instead of silently dropping candidates or corrupting
// probabilities, and must recover once the fault heals.
#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "core/builder.h"
#include "core/pnn.h"
#include "datagen/generators.h"
#include "rtree/pnn_baseline.h"
#include "storage/fault_injection.h"

namespace uvd {
namespace {

struct Fixture {
  Stats stats;
  storage::FaultInjectionPageManager pm{4096, &stats};
  uncertain::ObjectStore store{&pm};
  std::vector<uncertain::UncertainObject> objects;
  std::vector<uncertain::ObjectPtr> ptrs;
  std::optional<rtree::RTree> tree;
  std::optional<core::UVIndex> index;
  geom::Box domain;

  void Build(size_t n = 800, uint64_t seed = 5) {
    datagen::DatasetOptions opts;
    opts.count = n;
    opts.seed = seed;
    objects = datagen::GenerateUniform(opts);
    domain = datagen::DomainFor(opts);
    UVD_CHECK_OK(store.BulkLoad(objects, &ptrs));
    tree.emplace(rtree::RTree::BulkLoad(objects, ptrs, &pm, {100}, &stats).ValueOrDie());
    index.emplace(domain, &pm, core::UVIndexOptions{}, &stats);
    UVD_CHECK_OK(core::BuildUvIndex(objects, ptrs, *tree, domain,
                                    core::BuildMethod::kIC, {}, &*index, nullptr,
                                    &stats));
  }
};

TEST(FaultInjectionTest, PageManagerInjectsOnSchedule) {
  storage::FaultInjectionPageManager pm(256);
  const storage::PageId p = pm.Allocate();
  std::vector<uint8_t> buf{1, 2, 3};
  ASSERT_TRUE(pm.Write(p, buf).ok());

  pm.FailReadsAfter(2);
  std::vector<uint8_t> out;
  EXPECT_TRUE(pm.Read(p, &out).ok());   // 1st ok
  EXPECT_TRUE(pm.Read(p, &out).ok());   // 2nd ok
  EXPECT_EQ(pm.Read(p, &out).code(), StatusCode::kIOError);
  EXPECT_EQ(pm.injected_read_faults(), 1u);
  pm.Heal();
  EXPECT_TRUE(pm.Read(p, &out).ok());
}

TEST(FaultInjectionTest, UvIndexQueryPropagatesReadFault) {
  Fixture f;
  f.Build();
  f.pm.FailReadsAfter(0);
  const auto result = f.index->RetrieveCandidates({5000, 5000});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  f.pm.Heal();
  EXPECT_TRUE(f.index->RetrieveCandidates({5000, 5000}).ok());
}

TEST(FaultInjectionTest, UvIndexFullPnnPropagatesFetchFault) {
  Fixture f;
  f.Build();
  // Let the leaf page read succeed, then fail the object-record fetch.
  f.pm.FailReadsAfter(1);
  const auto result =
      core::EvaluatePnnWithUvIndex(*f.index, f.store, {5000, 5000});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, RtreeBaselinePropagatesReadFault) {
  Fixture f;
  f.Build();
  f.pm.FailReadsAfter(0);
  const auto result = rtree::RetrievePnnCandidates(*f.tree, {5000, 5000}, &f.stats);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  f.pm.Heal();
  EXPECT_TRUE(rtree::RetrievePnnCandidates(*f.tree, {5000, 5000}, &f.stats).ok());
}

TEST(FaultInjectionTest, RtreeFullPnnPropagatesFetchFault) {
  Fixture f;
  f.Build();
  // Exhaust the retrieval's leaf reads, then fail during object fetch:
  // allow a generous number of leaf reads first.
  f.pm.FailReadsAfter(64);
  const auto result = rtree::EvaluatePnnWithRtree(*f.tree, f.store, {5000, 5000});
  // Depending on how many leaves the traversal touches, the fault can land
  // in either phase; both must surface as IOError (or succeed if under 64
  // reads total, in which case rerun with a tighter budget).
  if (result.ok()) {
    f.pm.FailReadsAfter(2);
    const auto tight = rtree::EvaluatePnnWithRtree(*f.tree, f.store, {5000, 5000});
    ASSERT_FALSE(tight.ok());
    EXPECT_EQ(tight.status().code(), StatusCode::kIOError);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

TEST(FaultInjectionTest, ObjectStoreFetchPropagates) {
  Fixture f;
  f.Build(100);
  f.pm.FailReadsAfter(0);
  EXPECT_EQ(f.store.Fetch(f.ptrs[0]).status().code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, FinalizePropagatesWriteFault) {
  storage::FaultInjectionPageManager pm(4096);
  core::UVIndex index(geom::Box({0, 0}, {1000, 1000}), &pm, {}, nullptr);
  ASSERT_TRUE(index.InsertObject({{500, 500}, 10}, 0, 0, {}).ok());
  pm.FailWritesAfter(0);
  EXPECT_EQ(index.Finalize().code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, BulkLoadPropagatesWriteFault) {
  Stats stats;
  storage::FaultInjectionPageManager pm(4096, &stats);
  uncertain::ObjectStore store(&pm);
  datagen::DatasetOptions opts;
  opts.count = 200;
  const auto objects = datagen::GenerateUniform(opts);
  std::vector<uncertain::ObjectPtr> ptrs;
  pm.FailWritesAfter(1);
  EXPECT_EQ(store.BulkLoad(objects, &ptrs).code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, QueriesConsistentAfterTransientFaults) {
  // Faults during queries must not corrupt subsequent healed queries.
  Fixture f;
  f.Build(500, 9);
  const geom::Point q{4321, 8765};
  const auto before = core::RetrievePnnAnswerIds(*f.index, q).ValueOrDie();
  f.pm.FailReadsAfter(0);
  EXPECT_FALSE(core::RetrievePnnAnswerIds(*f.index, q).ok());
  f.pm.Heal();
  EXPECT_EQ(core::RetrievePnnAnswerIds(*f.index, q).ValueOrDie(), before);
}

}  // namespace
}  // namespace uvd
