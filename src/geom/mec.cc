#include "geom/mec.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace uvd {
namespace geom {

namespace {

// Numeric slack for containment tests during the recursion.
constexpr double kEps = 1e-9;

bool InCircle(const Circle& c, const Point& p) {
  return Distance(c.center, p) <= c.radius + kEps;
}

Circle FromTwo(const Point& a, const Point& b) {
  const Point center = (a + b) * 0.5;
  return Circle(center, Distance(a, b) * 0.5);
}

// Circumcircle of three non-collinear points; falls back to the best
// two-point circle when (nearly) collinear.
Circle FromThree(const Point& a, const Point& b, const Point& c) {
  const double d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  if (std::abs(d) < 1e-12) {
    Circle best = FromTwo(a, b);
    for (const Circle& cand : {FromTwo(a, c), FromTwo(b, c)}) {
      if (cand.radius > best.radius) best = cand;
    }
    return best;
  }
  const double a2 = a.Norm2(), b2 = b.Norm2(), c2 = c.Norm2();
  const Point center{(a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
                     (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d};
  return Circle(center, Distance(center, a));
}

}  // namespace

Circle MinimalEnclosingCircle(std::vector<Point> points) {
  if (points.empty()) return Circle({0, 0}, 0);
  // Deterministic shuffle: expected O(n) moves of Welzl's algorithm.
  std::mt19937_64 gen(0x5eed);
  std::shuffle(points.begin(), points.end(), gen);

  Circle circle(points[0], 0);
  for (size_t i = 1; i < points.size(); ++i) {
    if (InCircle(circle, points[i])) continue;
    circle = Circle(points[i], 0);
    for (size_t j = 0; j < i; ++j) {
      if (InCircle(circle, points[j])) continue;
      circle = FromTwo(points[i], points[j]);
      for (size_t k = 0; k < j; ++k) {
        if (InCircle(circle, points[k])) continue;
        circle = FromThree(points[i], points[j], points[k]);
      }
    }
  }
  return circle;
}

}  // namespace geom
}  // namespace uvd
